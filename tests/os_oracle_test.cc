// Differential oracle for the incremental memory accounting.
//
// The production VirtualAddressSpace keeps every USS/RSS/PSS/smaps quantity
// as incrementally maintained counters updated at page-state transition time.
// This test drives it together with a deliberately naive reference model that
// stores one PageState per page and recomputes every metric by brute-force
// rescan (the seed implementation's strategy). Tens of thousands of
// randomized, seeded operations across several processes sharing files must
// produce bit-identical integer metrics and FP-equal (to rounding) PSS at
// every step; any drift in a counter or bitmap transition shows up as an
// immediate mismatch with a reproducible seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/os/page.h"
#include "src/os/virtual_memory.h"

namespace desiccant {
namespace {

// ---------------------------------------------------------------------------
// Reference model: byte-per-page states, refcounts owned here, rescan queries.

class RefModel {
 public:
  struct File {
    uint64_t size_bytes = 0;
    std::vector<uint32_t> refs;
  };

  struct Region {
    std::string name;
    RegionKind kind = RegionKind::kAnonymous;
    FileId file = kInvalidFileId;
    std::vector<PageState> pages;
    bool never_written = true;
    bool live = true;
  };

  struct Process {
    std::vector<Region> regions;
  };

  FileId RegisterFile(uint64_t size_bytes) {
    File f;
    f.size_bytes = size_bytes;
    f.refs.assign(BytesToPages(size_bytes), 0);
    files_.push_back(std::move(f));
    return static_cast<FileId>(files_.size() - 1);
  }

  size_t AddProcess() {
    procs_.emplace_back();
    return procs_.size() - 1;
  }

  RegionId MapAnonymous(size_t proc, std::string name, uint64_t bytes) {
    Region r;
    r.name = std::move(name);
    r.pages.assign(BytesToPages(bytes), PageState::kNotPresent);
    procs_[proc].regions.push_back(std::move(r));
    return static_cast<RegionId>(procs_[proc].regions.size() - 1);
  }

  RegionId MapFile(size_t proc, std::string name, FileId file, uint64_t bytes) {
    if (bytes == 0) {
      bytes = files_[file].size_bytes;
    }
    Region r;
    r.name = std::move(name);
    r.kind = RegionKind::kFileBacked;
    r.file = file;
    r.pages.assign(BytesToPages(bytes), PageState::kNotPresent);
    procs_[proc].regions.push_back(std::move(r));
    return static_cast<RegionId>(procs_[proc].regions.size() - 1);
  }

  void Unmap(size_t proc, RegionId region) {
    Region& r = procs_[proc].regions[region];
    for (uint64_t p = 0; p < r.pages.size(); ++p) {
      DropPage(r, p);
    }
    r.live = false;
  }

  TouchResult Touch(size_t proc, RegionId region, uint64_t offset, uint64_t len, bool write) {
    Region& r = procs_[proc].regions[region];
    TouchResult result;
    if (len == 0) {
      return result;
    }
    if (write) {
      r.never_written = false;
    }
    const uint64_t first = offset / kPageSize;
    const uint64_t last = (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) {
      PageState& state = r.pages[p];
      if (r.kind == RegionKind::kAnonymous) {
        if (state == PageState::kNotPresent) {
          state = PageState::kResidentDirty;
          ++result.minor_faults;
        } else if (state == PageState::kSwapped) {
          state = PageState::kResidentDirty;
          ++result.swap_ins;
        }
      } else if (!write) {
        if (state == PageState::kNotPresent) {
          state = PageState::kResidentClean;
          ++files_[r.file].refs[p];
          ++result.minor_faults;
        } else if (state == PageState::kSwapped) {
          state = PageState::kResidentDirty;  // was COW'd before swap-out
          ++result.swap_ins;
        }
      } else {
        if (state == PageState::kNotPresent) {
          state = PageState::kResidentDirty;
          ++result.minor_faults;
        } else if (state == PageState::kSwapped) {
          state = PageState::kResidentDirty;
          ++result.swap_ins;
        } else if (state == PageState::kResidentClean) {
          state = PageState::kResidentDirty;
          --files_[r.file].refs[p];
          ++result.cow_faults;
        }
      }
    }
    return result;
  }

  uint64_t Release(size_t proc, RegionId region, uint64_t offset, uint64_t len) {
    Region& r = procs_[proc].regions[region];
    if (len == 0) {
      return 0;
    }
    const uint64_t first_byte = PageAlignUp(offset);
    const uint64_t last_byte = PageAlignDown(offset + len);
    if (first_byte >= last_byte) {
      return 0;
    }
    uint64_t dropped = 0;
    for (uint64_t p = first_byte / kPageSize; p < last_byte / kPageSize; ++p) {
      dropped += DropPage(r, p);
    }
    return dropped;
  }

  uint64_t SwapOutPages(size_t proc, uint64_t max_pages) {
    uint64_t reclaimed = 0;
    for (Region& r : procs_[proc].regions) {
      if (!r.live) {
        continue;
      }
      for (uint64_t p = 0; p < r.pages.size() && reclaimed < max_pages; ++p) {
        if (r.pages[p] == PageState::kResidentDirty) {
          r.pages[p] = PageState::kSwapped;
          ++reclaimed;
        } else if (r.pages[p] == PageState::kResidentClean) {
          r.pages[p] = PageState::kNotPresent;
          --files_[r.file].refs[p];
          ++reclaimed;
        }
      }
      if (reclaimed >= max_pages) {
        break;
      }
    }
    return reclaimed;
  }

  MemoryUsage Usage(size_t proc) const {
    MemoryUsage usage;
    for (const Region& r : procs_[proc].regions) {
      if (!r.live) {
        continue;
      }
      for (uint64_t p = 0; p < r.pages.size(); ++p) {
        switch (r.pages[p]) {
          case PageState::kResidentDirty:
            usage.rss += kPageSize;
            usage.uss += kPageSize;
            usage.pss += static_cast<double>(kPageSize);
            break;
          case PageState::kResidentClean: {
            const uint32_t count = files_[r.file].refs[p];
            usage.rss += kPageSize;
            if (count == 1) {
              usage.uss += kPageSize;
            }
            usage.pss += static_cast<double>(kPageSize) / static_cast<double>(count);
            break;
          }
          case PageState::kSwapped:
            usage.swapped += kPageSize;
            break;
          case PageState::kNotPresent:
            break;
        }
      }
    }
    return usage;
  }

  std::vector<RegionInfo> Smaps(size_t proc) const {
    std::vector<RegionInfo> infos;
    for (RegionId id = 0; id < procs_[proc].regions.size(); ++id) {
      const Region& r = procs_[proc].regions[id];
      if (!r.live) {
        continue;
      }
      RegionInfo info;
      info.id = id;
      info.name = r.name;
      info.kind = r.kind;
      info.size_bytes = PagesToBytes(r.pages.size());
      info.never_written = r.never_written;
      for (uint64_t p = 0; p < r.pages.size(); ++p) {
        switch (r.pages[p]) {
          case PageState::kResidentDirty:
            info.private_dirty += kPageSize;
            break;
          case PageState::kResidentClean:
            if (files_[r.file].refs[p] >= 2) {
              info.shared_clean += kPageSize;
            } else {
              info.private_clean += kPageSize;
            }
            break;
          case PageState::kSwapped:
            info.swapped += kPageSize;
            break;
          case PageState::kNotPresent:
            break;
        }
      }
      infos.push_back(std::move(info));
    }
    return infos;
  }

  uint64_t ResidentPagesInRange(size_t proc, RegionId region, uint64_t offset,
                                uint64_t len) const {
    const Region& r = procs_[proc].regions[region];
    if (len == 0) {
      return 0;
    }
    uint64_t resident = 0;
    const uint64_t first = offset / kPageSize;
    const uint64_t last = (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) {
      if (IsResident(r.pages[p])) {
        ++resident;
      }
    }
    return resident;
  }

  const Process& process(size_t proc) const { return procs_[proc]; }

 private:
  uint64_t DropPage(Region& r, uint64_t p) {
    switch (r.pages[p]) {
      case PageState::kResidentClean:
        --files_[r.file].refs[p];
        [[fallthrough]];
      case PageState::kResidentDirty:
      case PageState::kSwapped:
        r.pages[p] = PageState::kNotPresent;
        return 1;
      case PageState::kNotPresent:
        return 0;
    }
    return 0;
  }

  std::vector<File> files_;
  std::vector<Process> procs_;
};

// ---------------------------------------------------------------------------
// Harness: apply identical ops to both models, compare everything.

class OracleHarness {
 public:
  explicit OracleHarness(uint64_t seed) : rng_(seed) {
    // A mix of file sizes, including one that doesn't fill its last bitmap
    // word and one that is not page-aligned.
    file_ids_.push_back(MakeFile("libjvm.so", 96 * kPageSize));
    file_ids_.push_back(MakeFile("node", 130 * kPageSize));
    file_ids_.push_back(MakeFile("libc.so", 17 * kPageSize + 123));
    for (int i = 0; i < kProcesses; ++i) {
      vas_.push_back(std::make_unique<VirtualAddressSpace>(&registry_));
      ref_.AddProcess();
    }
  }

  void RunOps(int ops) {
    for (int i = 0; i < ops; ++i) {
      Step();
      VerifyAll();
    }
  }

 private:
  static constexpr int kProcesses = 3;

  FileId MakeFile(const std::string& name, uint64_t bytes) {
    const FileId real = registry_.RegisterFile(name, bytes);
    const FileId ref = ref_.RegisterFile(bytes);
    EXPECT_EQ(real, ref);
    return real;
  }

  void Step() {
    const size_t proc = rng_.UniformU64(0, kProcesses - 1);
    const double roll = rng_.NextDouble();
    if (roll < 0.40) {
      TouchOp(proc);
    } else if (roll < 0.60) {
      ReleaseOp(proc);
    } else if (roll < 0.70) {
      SwapOp(proc);
    } else if (roll < 0.80) {
      MapFileOp(proc);
    } else if (roll < 0.90) {
      MapAnonymousOp(proc);
    } else {
      UnmapOp(proc);
    }
  }

  // Picks a live region of `proc`, or kInvalidRegionId if none.
  RegionId PickLiveRegion(size_t proc) {
    std::vector<RegionId> live;
    const auto& regions = ref_.process(proc).regions;
    for (RegionId id = 0; id < regions.size(); ++id) {
      if (regions[id].live) {
        live.push_back(id);
      }
    }
    if (live.empty()) {
      return kInvalidRegionId;
    }
    return live[rng_.UniformU64(0, live.size() - 1)];
  }

  void TouchOp(size_t proc) {
    const RegionId region = PickLiveRegion(proc);
    if (region == kInvalidRegionId) {
      MapAnonymousOp(proc);
      return;
    }
    const uint64_t size = vas_[proc]->RegionSizeBytes(region);
    const uint64_t offset = rng_.UniformU64(0, size - 1);
    const uint64_t len = rng_.UniformU64(0, size - offset);  // may be 0
    const bool write = rng_.Chance(0.5);
    const TouchResult got = vas_[proc]->Touch(region, offset, len, write);
    const TouchResult want = ref_.Touch(proc, region, offset, len, write);
    ASSERT_EQ(got.minor_faults, want.minor_faults);
    ASSERT_EQ(got.swap_ins, want.swap_ins);
    ASSERT_EQ(got.cow_faults, want.cow_faults);
  }

  void ReleaseOp(size_t proc) {
    const RegionId region = PickLiveRegion(proc);
    if (region == kInvalidRegionId) {
      return;
    }
    const uint64_t size = vas_[proc]->RegionSizeBytes(region);
    const uint64_t offset = rng_.UniformU64(0, size - 1);
    const uint64_t len = rng_.UniformU64(0, size - offset);
    ASSERT_EQ(vas_[proc]->Release(region, offset, len), ref_.Release(proc, region, offset, len));
  }

  void SwapOp(size_t proc) {
    const uint64_t max_pages = rng_.UniformU64(0, 96);
    ASSERT_EQ(vas_[proc]->SwapOutPages(max_pages), ref_.SwapOutPages(proc, max_pages));
  }

  void MapFileOp(size_t proc) {
    const FileId file = file_ids_[rng_.UniformU64(0, file_ids_.size() - 1)];
    // Whole file two thirds of the time, a prefix otherwise.
    uint64_t bytes = 0;
    if (rng_.Chance(1.0 / 3.0)) {
      bytes = rng_.UniformU64(1, registry_.FileSizeBytes(file));
    }
    const std::string name = "file" + std::to_string(serial_++);
    const RegionId got = vas_[proc]->MapFile(name, file, bytes);
    const RegionId want = ref_.MapFile(proc, name, file, bytes);
    ASSERT_EQ(got, want);
  }

  void MapAnonymousOp(size_t proc) {
    const uint64_t bytes = rng_.UniformU64(1, 150 * kPageSize);
    const std::string name = "anon" + std::to_string(serial_++);
    const RegionId got = vas_[proc]->MapAnonymous(name, bytes);
    const RegionId want = ref_.MapAnonymous(proc, name, bytes);
    ASSERT_EQ(got, want);
  }

  void UnmapOp(size_t proc) {
    const RegionId region = PickLiveRegion(proc);
    if (region == kInvalidRegionId) {
      return;
    }
    vas_[proc]->Unmap(region);
    ref_.Unmap(proc, region);
  }

  void VerifyAll() {
    for (size_t proc = 0; proc < vas_.size(); ++proc) {
      const MemoryUsage got = vas_[proc]->Usage();
      const MemoryUsage want = ref_.Usage(proc);
      ASSERT_EQ(got.rss, want.rss);
      ASSERT_EQ(got.uss, want.uss);
      ASSERT_EQ(got.swapped, want.swapped);
      // The incremental PSS multiplies histogram buckets where the rescan
      // sums page by page; identical real values, different FP association.
      ASSERT_NEAR(got.pss, want.pss, 1e-6 * want.pss + 1e-3);

      const auto got_smaps = vas_[proc]->Smaps();
      const auto want_smaps = ref_.Smaps(proc);
      ASSERT_EQ(got_smaps.size(), want_smaps.size());
      for (size_t i = 0; i < got_smaps.size(); ++i) {
        ASSERT_EQ(got_smaps[i].id, want_smaps[i].id);
        ASSERT_EQ(got_smaps[i].name, want_smaps[i].name);
        ASSERT_EQ(got_smaps[i].kind, want_smaps[i].kind);
        ASSERT_EQ(got_smaps[i].size_bytes, want_smaps[i].size_bytes);
        ASSERT_EQ(got_smaps[i].private_dirty, want_smaps[i].private_dirty);
        ASSERT_EQ(got_smaps[i].private_clean, want_smaps[i].private_clean);
        ASSERT_EQ(got_smaps[i].shared_clean, want_smaps[i].shared_clean);
        ASSERT_EQ(got_smaps[i].swapped, want_smaps[i].swapped);
        ASSERT_EQ(got_smaps[i].never_written, want_smaps[i].never_written);

        // Random sub-range residency probe against the popcount path.
        const uint64_t size = got_smaps[i].size_bytes;
        const uint64_t offset = rng_.UniformU64(0, size - 1);
        const uint64_t len = rng_.UniformU64(0, size - offset);
        ASSERT_EQ(vas_[proc]->ResidentPagesInRange(got_smaps[i].id, offset, len),
                  ref_.ResidentPagesInRange(proc, got_smaps[i].id, offset, len));
        ASSERT_EQ(vas_[proc]->ResidentPagesInRegion(got_smaps[i].id),
                  ref_.ResidentPagesInRange(proc, got_smaps[i].id, 0, size));
      }
    }
  }

  Rng rng_;
  SharedFileRegistry registry_;
  RefModel ref_;
  std::vector<std::unique_ptr<VirtualAddressSpace>> vas_;
  std::vector<FileId> file_ids_;
  uint64_t serial_ = 0;
};

TEST(OsOracleTest, TenThousandRandomOpsMatchBruteForce) {
  OracleHarness harness(/*seed=*/0xD5);
  harness.RunOps(10000);
}

TEST(OsOracleTest, SecondSeedMatchesBruteForce) {
  OracleHarness harness(/*seed=*/0xFEEDFACE);
  harness.RunOps(3000);
}

}  // namespace
}  // namespace desiccant
