// Tests for the custom-workload CSV loader.
#include <gtest/gtest.h>

#include <fstream>

#include "src/faas/single_study.h"
#include "src/workloads/workload_csv.h"

namespace desiccant {
namespace {

constexpr char kHeader[] =
    "name,language,stage,alloc_kib,object_bytes,persistent_kib,window_kib,exec_ms,"
    "carry_kib,init_kib,weak_kib,weak_deopt\n";

class WorkloadCsvTest : public ::testing::Test {
 protected:
  std::string WriteCsv(const std::string& body) {
    const std::string path = ::testing::TempDir() + "/workloads.csv";
    std::ofstream out(path);
    out << kHeader << body;
    return path;
  }
};

TEST_F(WorkloadCsvTest, LoadsSingleStageWorkload) {
  const std::string path =
      WriteCsv("my-fn,javascript,0,4096,1024,512,256,12.5,0,2048,0,1.0\n");
  std::string error;
  const auto workloads = LoadWorkloadsCsv(path, &error);
  ASSERT_EQ(workloads.size(), 1u) << error;
  const WorkloadSpec& w = workloads[0];
  EXPECT_EQ(w.name, "my-fn");
  EXPECT_EQ(w.language, Language::kJavaScript);
  ASSERT_EQ(w.chain_length(), 1u);
  EXPECT_EQ(w.stages[0].alloc_bytes, 4096 * kKiB);
  EXPECT_EQ(w.stages[0].object_size, 1024u);
  EXPECT_DOUBLE_EQ(w.stages[0].exec_ms, 12.5);
  EXPECT_EQ(w.stages[0].init_churn_bytes, 2048 * kKiB);
}

TEST_F(WorkloadCsvTest, LoadsChains) {
  const std::string path = WriteCsv(
      "etl,java,0,8192,2048,1024,1024,20,4096,8192,0,1.0\n"
      "etl,java,1,4096,2048,1024,1024,10,0,4096,0,1.0\n"
      "tiny,python,0,512,256,128,64,1,0,512,0,1.0\n");
  std::string error;
  const auto workloads = LoadWorkloadsCsv(path, &error);
  ASSERT_EQ(workloads.size(), 2u) << error;
  EXPECT_EQ(workloads[0].chain_length(), 2u);
  EXPECT_EQ(workloads[0].stages[0].carry_bytes, 4096 * kKiB);
  EXPECT_EQ(workloads[1].language, Language::kPython);
}

TEST_F(WorkloadCsvTest, RejectsBadHeader) {
  const std::string path = ::testing::TempDir() + "/bad.csv";
  std::ofstream(path) << "name,foo\nx,y\n";
  std::string error;
  EXPECT_TRUE(LoadWorkloadsCsv(path, &error).empty());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST_F(WorkloadCsvTest, RejectsUnknownLanguage) {
  const std::string path = WriteCsv("x,rust,0,1,256,1,1,1,0,0,0,1.0\n");
  std::string error;
  EXPECT_TRUE(LoadWorkloadsCsv(path, &error).empty());
  EXPECT_NE(error.find("language"), std::string::npos);
}

TEST_F(WorkloadCsvTest, RejectsMissingStage) {
  const std::string path = WriteCsv(
      "x,java,0,1024,256,64,64,1,0,0,0,1.0\n"
      "x,java,2,1024,256,64,64,1,0,0,0,1.0\n");
  std::string error;
  EXPECT_TRUE(LoadWorkloadsCsv(path, &error).empty());
  EXPECT_NE(error.find("missing stage"), std::string::npos);
}

TEST_F(WorkloadCsvTest, RejectsDuplicateStage) {
  const std::string path = WriteCsv(
      "x,java,0,1024,256,64,64,1,0,0,0,1.0\n"
      "x,java,0,1024,256,64,64,1,0,0,0,1.0\n");
  std::string error;
  EXPECT_TRUE(LoadWorkloadsCsv(path, &error).empty());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST_F(WorkloadCsvTest, RejectsMixedLanguageChain) {
  const std::string path = WriteCsv(
      "x,java,0,1024,256,64,64,1,0,0,0,1.0\n"
      "x,python,1,1024,256,64,64,1,0,0,0,1.0\n");
  std::string error;
  EXPECT_TRUE(LoadWorkloadsCsv(path, &error).empty());
  EXPECT_NE(error.find("mixes languages"), std::string::npos);
}

TEST_F(WorkloadCsvTest, LoadedWorkloadRunsEndToEnd) {
  const std::string path =
      WriteCsv("custom,javascript,0,6144,2048,1024,1024,10,0,3072,0,1.0\n");
  std::string error;
  const auto workloads = LoadWorkloadsCsv(path, &error);
  ASSERT_EQ(workloads.size(), 1u) << error;
  StudyConfig config;
  ChainStudy study(workloads[0], config);
  ChainSample sample;
  for (int i = 0; i < 20; ++i) {
    sample = study.Step();
  }
  const uint64_t vanilla = sample.uss;
  study.ReclaimAll();
  EXPECT_LT(study.Sample().uss, vanilla);
}

}  // namespace
}  // namespace desiccant
