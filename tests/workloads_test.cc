// Tests for the Table 1 suite and the allocation-program interpreter.
#include <gtest/gtest.h>

#include "src/faas/instance.h"
#include "src/workloads/function_program.h"
#include "src/workloads/function_spec.h"

namespace desiccant {
namespace {

// ---------------------------------------------------------------------------
// Suite contents (Table 1)

TEST(SuiteTest, TwentyWorkloads) {
  EXPECT_EQ(WorkloadSuite().size(), 20u);
  EXPECT_EQ(SuiteByLanguage(Language::kJava).size(), 8u);
  EXPECT_EQ(SuiteByLanguage(Language::kJavaScript).size(), 12u);
}

TEST(SuiteTest, ChainLengthsMatchTable1) {
  EXPECT_EQ(FindWorkload("image-pipeline")->chain_length(), 4u);
  EXPECT_EQ(FindWorkload("hotel-searching")->chain_length(), 3u);
  EXPECT_EQ(FindWorkload("mapreduce")->chain_length(), 2u);
  EXPECT_EQ(FindWorkload("specjbb2015")->chain_length(), 3u);
  EXPECT_EQ(FindWorkload("data-analysis")->chain_length(), 6u);
  EXPECT_EQ(FindWorkload("alexa")->chain_length(), 8u);
  EXPECT_EQ(FindWorkload("fft")->chain_length(), 1u);
}

TEST(SuiteTest, FindWorkloadUnknownReturnsNull) {
  EXPECT_EQ(FindWorkload("no-such-function"), nullptr);
}

TEST(SuiteTest, ChainStagesCarryExceptLast) {
  const WorkloadSpec* mapreduce = FindWorkload("mapreduce");
  EXPECT_GT(mapreduce->stages[0].carry_bytes, 0u);
  EXPECT_EQ(mapreduce->stages[1].carry_bytes, 0u);
}

TEST(SuiteTest, WeakSensitiveFunctions) {
  EXPECT_GT(FindWorkload("unionfind")->stages[0].weak_bytes, 0u);
  EXPECT_DOUBLE_EQ(FindWorkload("unionfind")->stages[0].weak_deopt_factor, 1.74);
  EXPECT_DOUBLE_EQ(FindWorkload("data-analysis")->stages[0].weak_deopt_factor, 2.14);
  EXPECT_DOUBLE_EQ(FindWorkload("sort")->stages[0].weak_deopt_factor, 1.0);
}

TEST(SuiteTest, TotalExecMsSumsStages) {
  const WorkloadSpec* w = FindWorkload("mapreduce");
  EXPECT_DOUBLE_EQ(w->TotalExecMs(), w->stages[0].exec_ms + w->stages[1].exec_ms);
}

TEST(SuiteTest, CoarsenScalesObjectSizes) {
  const WorkloadSpec* fft = FindWorkload("fft");
  const WorkloadSpec coarse = CoarsenObjects(*fft, 4);
  EXPECT_EQ(coarse.stages[0].object_size, fft->stages[0].object_size * 4);
  EXPECT_EQ(coarse.stages[0].alloc_bytes, fft->stages[0].alloc_bytes);
}

TEST(SuiteTest, CoarsenCapsAtRegularObjectLimit) {
  const WorkloadSpec* matrix = FindWorkload("matrix");  // 32 KiB objects
  const WorkloadSpec coarse = CoarsenObjects(*matrix, 1000);
  EXPECT_LE(coarse.stages[0].object_size, 128 * kKiB);
}

// ---------------------------------------------------------------------------
// FunctionProgram semantics (driven through real runtimes)

class ProgramTest : public ::testing::TestWithParam<Language> {
 protected:
  std::unique_ptr<Instance> MakeInstance(const WorkloadSpec* workload, size_t stage = 0) {
    return std::make_unique<Instance>(1, workload, stage, 256 * kMiB, &registry_, 99);
  }
  SharedFileRegistry registry_;
};

TEST_P(ProgramTest, LiveBytesApproachPersistentAfterExit) {
  const WorkloadSpec* w =
      GetParam() == Language::kJava ? FindWorkload("sort") : FindWorkload("dynamic-html");
  auto instance = MakeInstance(w);
  for (int i = 0; i < 5; ++i) {
    instance->Execute();
    instance->Freeze(instance->exec_clock().Now());
    instance->Thaw();
  }
  const StageSpec& spec = w->stages[0];
  const uint64_t live = instance->runtime().ExactLiveBytes();
  // At the exit point only the persistent state (plus weak set) is live.
  EXPECT_GE(live, spec.persistent_bytes);
  EXPECT_LE(live, spec.persistent_bytes * 3 / 2 + spec.weak_bytes);
}

INSTANTIATE_TEST_SUITE_P(Languages, ProgramTest,
                         ::testing::Values(Language::kJava, Language::kJavaScript));

TEST(ProgramSemanticsTest, FirstInvocationAllocatesInit) {
  const WorkloadSpec* w = FindWorkload("file-hash");
  SharedFileRegistry registry;
  Instance instance(1, w, 0, 256 * kMiB, &registry, 5);
  const InvocationOutcome first = instance.Execute();
  const InvocationOutcome second = instance.Execute();
  // Init churn makes the first invocation allocate much more.
  EXPECT_GT(first.mutator.allocated_bytes,
            second.mutator.allocated_bytes + w->stages[0].init_churn_bytes / 2);
  // The init working set died at the first exit.
  EXPECT_LT(instance.runtime().ExactLiveBytes(), w->stages[0].init_churn_bytes);
}

TEST(ProgramSemanticsTest, CarryStaysLiveUntilConsumed) {
  const WorkloadSpec* w = FindWorkload("mapreduce");
  SharedFileRegistry registry;
  Instance mapper(1, w, 0, 256 * kMiB, &registry, 5);
  mapper.Execute();
  EXPECT_TRUE(mapper.program().has_carry());
  const uint64_t live_with_carry = mapper.runtime().ExactLiveBytes();
  EXPECT_GE(live_with_carry, w->stages[0].carry_bytes);
  mapper.program().ConsumeCarry(mapper.runtime());
  EXPECT_FALSE(mapper.program().has_carry());
  EXPECT_LE(mapper.runtime().ExactLiveBytes(), live_with_carry - w->stages[0].carry_bytes);
}

TEST(ProgramSemanticsTest, EagerGcCannotCollectCarry) {
  const WorkloadSpec* w = FindWorkload("mapreduce");
  SharedFileRegistry registry;
  Instance mapper(1, w, 0, 256 * kMiB, &registry, 5);
  mapper.Execute();
  mapper.EagerGc();
  EXPECT_GE(mapper.runtime().EstimateLiveBytes(), w->stages[0].carry_bytes);
}

TEST(ProgramSemanticsTest, WeakSetRebuiltAfterAggressiveCollection) {
  const WorkloadSpec* w = FindWorkload("unionfind");
  SharedFileRegistry registry;
  Instance instance(1, w, 0, 256 * kMiB, &registry, 5);
  instance.Execute();
  EXPECT_TRUE(instance.runtime().weak_roots().AnyNonNull());
  instance.runtime().CollectGarbage(/*aggressive=*/true);
  EXPECT_FALSE(instance.runtime().weak_roots().AnyNonNull());
  instance.Execute();  // lazily re-created
  EXPECT_TRUE(instance.runtime().weak_roots().AnyNonNull());
}

TEST(ProgramSemanticsTest, JitWarmupSpeedsUp) {
  const WorkloadSpec* w = FindWorkload("pi");
  SharedFileRegistry registry;
  Instance instance(1, w, 0, 256 * kMiB, &registry, 5);
  const InvocationOutcome first = instance.Execute();
  InvocationOutcome last{};
  for (int i = 0; i < 20; ++i) {
    last = instance.Execute();
  }
  EXPECT_GT(first.exec_multiplier, last.exec_multiplier);
  EXPECT_DOUBLE_EQ(last.exec_multiplier, 1.0);
  EXPECT_GT(first.duration, last.duration);
}

TEST(ProgramSemanticsTest, InvocationAdvancesInstanceClock) {
  const WorkloadSpec* w = FindWorkload("sort");
  SharedFileRegistry registry;
  Instance instance(1, w, 0, 256 * kMiB, &registry, 5);
  const SimTime before = instance.exec_clock().Now();
  instance.Execute();
  EXPECT_GT(instance.exec_clock().Now(), before);
}

// Every workload stage runs without error on its runtime and leaves a
// plausible live set — the whole Table 1 swept as a parameterized test.
class SuiteSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteSweepTest, TenInvocationsPerStage) {
  const WorkloadSpec* w = FindWorkload(GetParam());
  ASSERT_NE(w, nullptr);
  SharedFileRegistry registry;
  for (size_t stage = 0; stage < w->chain_length(); ++stage) {
    Instance instance(stage + 1, w, stage, 256 * kMiB, &registry, 7 + stage);
    for (int i = 0; i < 10; ++i) {
      if (instance.program().has_carry()) {
        instance.program().ConsumeCarry(instance.runtime());
      }
      const InvocationOutcome outcome = instance.Execute();
      EXPECT_GT(outcome.duration, 0u);
      EXPECT_GE(outcome.mutator.allocated_bytes, w->stages[stage].alloc_bytes);
    }
    const StageSpec& spec = w->stages[stage];
    const uint64_t live = instance.runtime().ExactLiveBytes();
    EXPECT_GE(live, spec.persistent_bytes);
    EXPECT_LE(live, spec.persistent_bytes + spec.weak_bytes + spec.carry_bytes +
                        spec.persistent_bytes / 2 + 64 * kKiB);
    // Memory accounting sanity.
    const MemoryUsage usage = instance.Usage();
    EXPECT_GE(usage.rss, usage.uss);
    EXPECT_GE(usage.uss, live / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteSweepTest, ::testing::Values(
    "time", "sort", "file-hash", "image-resize", "image-pipeline", "hotel-searching",
    "mapreduce", "specjbb2015", "clock", "dynamic-html", "factor", "fft", "fibonacci",
    "filesystem", "matrix", "pi", "unionfind", "web-server", "data-analysis", "alexa"));

}  // namespace
}  // namespace desiccant
