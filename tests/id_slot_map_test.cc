// Tests for the open-addressing id-slot map that backs the Platform hot maps.
//
// The differential churn test is the load-bearing one: IdSlotMap replaces
// std::unordered_map under maps that insert/erase millions of dense
// sequential ids per run, and the backward-shift erase is the piece that is
// easy to get subtly wrong (a mis-shifted cluster silently loses an entry, or
// resurrects an erased one). Driving both maps with the same seeded operation
// stream and comparing contents after every mutation pins the semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/id_slot_map.h"

namespace desiccant {
namespace {

TEST(IdSlotMapTest, EmptyMapBasics) {
  IdSlotMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(1), map.end());
  EXPECT_EQ(map.count(1), 0u);
  EXPECT_EQ(map.erase(1), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(IdSlotMapTest, InsertFindErase) {
  IdSlotMap<std::string> map;
  map[1] = "one";
  map[2] = "two";
  map.emplace(3, "three");
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.at(1), "one");
  EXPECT_EQ(map.find(2)->second, "two");
  EXPECT_EQ(map.count(3), 1u);
  EXPECT_EQ(map.count(4), 0u);
  EXPECT_EQ(map.erase(2), 1u);
  EXPECT_EQ(map.count(2), 0u);
  EXPECT_EQ(map.size(), 2u);
  map[2] = "again";
  EXPECT_EQ(map.at(2), "again");
}

TEST(IdSlotMapTest, OperatorBracketDefaultConstructs) {
  IdSlotMap<uint64_t> map;
  EXPECT_EQ(map[7], 0u);
  map[7] += 5;
  EXPECT_EQ(map.at(7), 5u);
}

TEST(IdSlotMapTest, MoveOnlyValues) {
  IdSlotMap<std::unique_ptr<int>> map;
  for (uint64_t id = 1; id <= 100; ++id) {
    map[id] = std::make_unique<int>(static_cast<int>(id));
  }
  EXPECT_EQ(map.size(), 100u);  // crossed several growth rehashes
  for (uint64_t id = 1; id <= 100; ++id) {
    ASSERT_NE(map.find(id), map.end());
    EXPECT_EQ(*map.at(id), static_cast<int>(id));
  }
  EXPECT_EQ(map.erase(50), 1u);
  EXPECT_EQ(map.find(50), map.end());
  EXPECT_EQ(map.size(), 99u);
}

TEST(IdSlotMapTest, IterationVisitsEveryEntryOnce) {
  IdSlotMap<uint64_t> map;
  for (uint64_t id = 1; id <= 1000; ++id) {
    map[id] = id * 10;
  }
  std::vector<uint64_t> seen;
  for (const auto& [id, value] : map) {
    EXPECT_EQ(value, id * 10);
    seen.push_back(id);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(seen[i], i + 1);
  }
}

TEST(IdSlotMapTest, EraseDuringIterationSingleMatch) {
  // The Platform's AbortReclaimsFor pattern: full scan, erase the (at most
  // one) matching entry via `it = map.erase(it)`, keep scanning.
  IdSlotMap<uint64_t> map;
  for (uint64_t id = 1; id <= 64; ++id) {
    map[id] = id;
  }
  uint64_t erased = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (it->second == 33) {
      it = map.erase(it);
      ++erased;
      continue;
    }
    ++it;
  }
  EXPECT_EQ(erased, 1u);
  EXPECT_EQ(map.size(), 63u);
  EXPECT_EQ(map.count(33), 0u);
}

TEST(IdSlotMapTest, ClearReleasesEntries) {
  IdSlotMap<std::unique_ptr<int>> map;
  for (uint64_t id = 1; id <= 10; ++id) {
    map[id] = std::make_unique<int>(1);
  }
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), map.end());
  map[3] = std::make_unique<int>(7);
  EXPECT_EQ(*map.at(3), 7);
}

TEST(IdSlotMapTest, ReserveAvoidsRehash) {
  IdSlotMap<uint64_t> map;
  map.reserve(10000);
  for (uint64_t id = 1; id <= 10000; ++id) {
    map[id] = id;
  }
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t id = 1; id <= 10000; ++id) {
    ASSERT_EQ(map.count(id), 1u) << id;
  }
}

// The load-bearing test: 200k seeded random operations mirrored against
// std::unordered_map, with full-content comparison at checkpoints. Keys are
// drawn from a sliding dense window to mimic the Platform's id churn
// (monotonic allocation, erase-mostly-oldest).
TEST(IdSlotMapTest, DifferentialChurnAgainstUnorderedMap) {
  IdSlotMap<uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> reference;
  std::mt19937_64 rng(20260809);
  uint64_t next_id = 1;
  std::vector<uint64_t> live;

  auto check_full = [&]() {
    ASSERT_EQ(map.size(), reference.size());
    for (const auto& [id, value] : reference) {
      auto it = map.find(id);
      ASSERT_NE(it, map.end()) << "missing id " << id;
      ASSERT_EQ(it->second, value) << "wrong value for id " << id;
    }
    uint64_t walked = 0;
    for (const auto& [id, value] : map) {
      auto it = reference.find(id);
      ASSERT_NE(it, reference.end()) << "phantom id " << id;
      ASSERT_EQ(it->second, value);
      ++walked;
    }
    ASSERT_EQ(walked, reference.size());
  };

  for (int op = 0; op < 200000; ++op) {
    const uint64_t dice = rng() % 100;
    if (dice < 55 || live.empty()) {
      const uint64_t id = next_id++;
      const uint64_t value = rng();
      map[id] = value;
      reference[id] = value;
      live.push_back(id);
    } else if (dice < 90) {
      // Erase a random live id (biased sampling is fine; both maps see it).
      const size_t pick = rng() % live.size();
      const uint64_t id = live[pick];
      ASSERT_EQ(map.erase(id), reference.erase(id));
      live[pick] = live.back();
      live.pop_back();
    } else {
      // Point lookups, live and dead.
      const uint64_t id = live[rng() % live.size()];
      ASSERT_EQ(map.count(id), reference.count(id));
      const uint64_t dead = next_id + rng() % 100;
      ASSERT_EQ(map.count(dead), reference.count(dead));
    }
    if (op % 20000 == 0) {
      check_full();
    }
  }
  check_full();
}

}  // namespace
}  // namespace desiccant
