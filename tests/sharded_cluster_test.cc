// The intra-cell parallel engine: routing semantics, barrier/clock behaviour,
// the sharding invariants (per-node trajectories independent of both the
// shard partition and the worker count), and the guard rails (crash plans and
// time-travel submissions abort).
#include <gtest/gtest.h>

#include <vector>

#include "src/faas/cluster.h"
#include "src/faas/sharded_cluster.h"
#include "src/trace/population.h"

namespace desiccant {
namespace {

// A small population + arrival stream shared by the routing tests.
struct Fixture {
  explicit Fixture(size_t functions = 40, uint64_t seed = 77)
      : population(PopulationConfig::AzureLike(functions, seed)),
        arrivals(population.GenerateArrivals(6.0, 0, FromSeconds(30))) {}

  SyntheticPopulation population;
  std::vector<TraceArrival> arrivals;
};

ShardedClusterConfig BaseConfig(size_t nodes, RoutingPolicy routing) {
  ShardedClusterConfig config;
  config.node_count = nodes;
  config.routing = routing;
  config.node.cpu_cores = 2.0;
  config.node.cache_capacity_bytes = 512 * kMiB;
  return config;
}

void Replay(ShardedCluster* cluster, const std::vector<TraceArrival>& arrivals,
            SimTime deadline) {
  for (const TraceArrival& a : arrivals) {
    cluster->Submit(a.workload, a.time);
  }
  cluster->RunUntil(deadline);
}

TEST(ShardedClusterTest, NodeClocksLandOnTheDeadline) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kAffinity));
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  EXPECT_EQ(cluster.frontier(), FromSeconds(35));
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_EQ(cluster.node(i).clock().Now(), FromSeconds(35));
  }
  EXPECT_EQ(cluster.arrivals_routed(), fx.arrivals.size());
}

TEST(ShardedClusterTest, AffinityPinsEachFunctionToOneNode) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kAffinity));
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  // Each workload's stages should have been interned on exactly one node.
  size_t total_interned = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    total_interned += cluster.node(i).functions().size();
  }
  size_t total_stages = 0;
  for (const WorkloadSpec& w : fx.population.workloads()) {
    total_stages += w.stages.size();
  }
  // Some rare functions may have no arrival in the window; equality with the
  // interned total holds only if nothing was interned on two nodes.
  EXPECT_LE(total_interned, total_stages);
}

TEST(ShardedClusterTest, RoundRobinSpreadsAcrossAllNodes) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kRoundRobin));
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_GT(cluster.node(i).functions().size(), 0u) << "node " << i << " got no work";
  }
}

TEST(ShardedClusterTest, AggregateSumsTheNodes) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kAffinity));
  cluster.BeginMeasurement();
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  const PlatformMetrics total = cluster.AggregateMetrics();
  uint64_t completed = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    completed += cluster.node(i).metrics().requests_completed;
  }
  EXPECT_GT(total.requests_completed, 0u);
  EXPECT_EQ(total.requests_completed, completed);
}

// ---------------------------------------------------------------------------
// Sharding invariants

// The shard partition groups nodes onto timelines but must not change any
// node's trajectory: node-scoped events only touch their own platform, and
// (time, seq) ordering preserves each node's per-arrival order within any
// merged queue.
TEST(ShardedClusterTest, ShardPartitionDoesNotChangeNodeTrajectories) {
  Fixture fx;
  std::vector<std::vector<uint64_t>> fingerprints;
  for (const size_t shard_count : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kAffinity);
    config.shard_count = shard_count;
    ShardedCluster cluster(config);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(35));
    (void)cluster.AggregateMetrics();
    fingerprints.push_back(cluster.NodeFingerprints());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

// The engine's core guarantee, on the barrier-fallback path: least-loaded
// routing with zero network delay forces per-epoch barrier merges, and the
// result must still be byte-identical at any worker count.
TEST(ShardedClusterTest, ZeroLookaheadBarrierPathIsDeterministic) {
  Fixture fx;
  std::vector<uint64_t> aggregate;
  std::vector<std::vector<uint64_t>> per_node;
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kLeastLoaded);
    config.network_delay = 0;
    config.barrier_epoch = 20 * kMillisecond;
    config.threads = threads;
    ShardedCluster cluster(config);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(35));
    aggregate.push_back(cluster.AggregateMetrics().Fingerprint());
    per_node.push_back(cluster.NodeFingerprints());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(per_node[0], per_node[1]);
}

// Sanity anchor: with one shard and static routing the sharded engine is the
// shared-timeline Cluster modulo observer-tick scope, so their aggregate
// request counts must agree exactly.
TEST(ShardedClusterTest, MatchesClusterRequestCountsOnOneShard) {
  Fixture fx;
  ShardedClusterConfig sharded_config = BaseConfig(4, RoutingPolicy::kAffinity);
  sharded_config.shard_count = 1;
  sharded_config.network_delay = 0;  // Cluster routes with no network delay
  ShardedCluster sharded(sharded_config);
  sharded.BeginMeasurement();
  Replay(&sharded, fx.arrivals, FromSeconds(40));

  ClusterConfig cluster_config;
  cluster_config.node_count = 4;
  cluster_config.routing = RoutingPolicy::kAffinity;
  cluster_config.node = sharded_config.node;
  Cluster cluster(cluster_config);
  cluster.BeginMeasurement();
  for (const TraceArrival& a : fx.arrivals) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.RunUntil(FromSeconds(40));

  const PlatformMetrics a = sharded.AggregateMetrics();
  const PlatformMetrics b = cluster.AggregateMetrics();
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.cold_boots, b.cold_boots);
  EXPECT_EQ(a.warm_starts, b.warm_starts);
}

// ---------------------------------------------------------------------------
// Guard rails

TEST(ShardedClusterDeathTest, CrashPlansAbort) {
  ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kAffinity);
  config.node.faults.node_crash_mtbf_seconds = 300.0;
  // The diagnostic must name the offending fault kind and point at the
  // shared-timeline fallback.
  EXPECT_DEATH(ShardedCluster{config}, "enables 'node-crash' faults");
  EXPECT_DEATH(ShardedCluster{config}, "shared-timeline Cluster");
}

TEST(ShardedClusterDeathTest, ZeroNodesAbort) {
  ShardedClusterConfig config;
  config.node_count = 0;
  EXPECT_DEATH(ShardedCluster{config}, "node_count");
}

TEST(ShardedClusterDeathTest, SubmittingIntoThePastAborts) {
  Fixture fx(20, 5);
  ShardedCluster cluster(BaseConfig(2, RoutingPolicy::kAffinity));
  cluster.RunUntil(FromSeconds(10));
  EXPECT_DEATH(cluster.Submit(&fx.population.workloads()[0], FromSeconds(5)),
               "before the simulated frontier");
}

}  // namespace
}  // namespace desiccant
