// The intra-cell parallel engine: routing semantics, barrier/clock behaviour,
// the sharding invariants (per-node trajectories independent of the shard
// partition, the rack hierarchy, and the worker count), crash-plan support
// via migration barriers, and the guard rails (invalid hierarchy configs and
// time-travel submissions abort).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/faas/cluster.h"
#include "src/faas/sharded_cluster.h"
#include "src/trace/population.h"

namespace desiccant {
namespace {

// A small population + arrival stream shared by the routing tests.
struct Fixture {
  explicit Fixture(size_t functions = 40, uint64_t seed = 77)
      : population(PopulationConfig::AzureLike(functions, seed)),
        arrivals(population.GenerateArrivals(6.0, 0, FromSeconds(30))) {}

  SyntheticPopulation population;
  std::vector<TraceArrival> arrivals;
};

ShardedClusterConfig BaseConfig(size_t nodes, RoutingPolicy routing) {
  ShardedClusterConfig config;
  config.node_count = nodes;
  config.routing = routing;
  config.node.cpu_cores = 2.0;
  config.node.cache_capacity_bytes = 512 * kMiB;
  return config;
}

void Replay(ShardedCluster* cluster, const std::vector<TraceArrival>& arrivals,
            SimTime deadline) {
  for (const TraceArrival& a : arrivals) {
    cluster->Submit(a.workload, a.time);
  }
  cluster->RunUntil(deadline);
}

TEST(ShardedClusterTest, NodeClocksLandOnTheDeadline) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kAffinity));
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  EXPECT_EQ(cluster.frontier(), FromSeconds(35));
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_EQ(cluster.node(i).clock().Now(), FromSeconds(35));
  }
  EXPECT_EQ(cluster.arrivals_routed(), fx.arrivals.size());
}

TEST(ShardedClusterTest, AffinityPinsEachFunctionToOneNode) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kAffinity));
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  // Each workload's stages should have been interned on exactly one node.
  size_t total_interned = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    total_interned += cluster.node(i).functions().size();
  }
  size_t total_stages = 0;
  for (const WorkloadSpec& w : fx.population.workloads()) {
    total_stages += w.stages.size();
  }
  // Some rare functions may have no arrival in the window; equality with the
  // interned total holds only if nothing was interned on two nodes.
  EXPECT_LE(total_interned, total_stages);
}

TEST(ShardedClusterTest, RoundRobinSpreadsAcrossAllNodes) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kRoundRobin));
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_GT(cluster.node(i).functions().size(), 0u) << "node " << i << " got no work";
  }
}

TEST(ShardedClusterTest, AggregateSumsTheNodes) {
  Fixture fx;
  ShardedCluster cluster(BaseConfig(4, RoutingPolicy::kAffinity));
  cluster.BeginMeasurement();
  Replay(&cluster, fx.arrivals, FromSeconds(35));
  const PlatformMetrics total = cluster.AggregateMetrics();
  uint64_t completed = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    completed += cluster.node(i).metrics().requests_completed;
  }
  EXPECT_GT(total.requests_completed, 0u);
  EXPECT_EQ(total.requests_completed, completed);
}

// ---------------------------------------------------------------------------
// Sharding invariants

// The shard partition groups nodes onto timelines but must not change any
// node's trajectory: node-scoped events only touch their own platform, and
// (time, seq) ordering preserves each node's per-arrival order within any
// merged queue.
TEST(ShardedClusterTest, ShardPartitionDoesNotChangeNodeTrajectories) {
  Fixture fx;
  std::vector<std::vector<uint64_t>> fingerprints;
  for (const size_t shard_count : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kAffinity);
    config.shard_count = shard_count;
    ShardedCluster cluster(config);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(35));
    (void)cluster.AggregateMetrics();
    fingerprints.push_back(cluster.NodeFingerprints());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

// The engine's core guarantee, on the barrier-fallback path: least-loaded
// routing with zero network delay forces per-epoch barrier merges, and the
// result must still be byte-identical at any worker count.
TEST(ShardedClusterTest, ZeroLookaheadBarrierPathIsDeterministic) {
  Fixture fx;
  std::vector<uint64_t> aggregate;
  std::vector<std::vector<uint64_t>> per_node;
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kLeastLoaded);
    config.network_delay = 0;
    config.barrier_epoch = 20 * kMillisecond;
    config.threads = threads;
    ShardedCluster cluster(config);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(35));
    aggregate.push_back(cluster.AggregateMetrics().Fingerprint());
    per_node.push_back(cluster.NodeFingerprints());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(per_node[0], per_node[1]);
}

// Sanity anchor: with one shard and static routing the sharded engine is the
// shared-timeline Cluster modulo observer-tick scope, so their aggregate
// request counts must agree exactly.
TEST(ShardedClusterTest, MatchesClusterRequestCountsOnOneShard) {
  Fixture fx;
  ShardedClusterConfig sharded_config = BaseConfig(4, RoutingPolicy::kAffinity);
  sharded_config.shard_count = 1;
  sharded_config.network_delay = 0;  // Cluster routes with no network delay
  ShardedCluster sharded(sharded_config);
  sharded.BeginMeasurement();
  Replay(&sharded, fx.arrivals, FromSeconds(40));

  ClusterConfig cluster_config;
  cluster_config.node_count = 4;
  cluster_config.routing = RoutingPolicy::kAffinity;
  cluster_config.node = sharded_config.node;
  Cluster cluster(cluster_config);
  cluster.BeginMeasurement();
  for (const TraceArrival& a : fx.arrivals) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.RunUntil(FromSeconds(40));

  const PlatformMetrics a = sharded.AggregateMetrics();
  const PlatformMetrics b = cluster.AggregateMetrics();
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.cold_boots, b.cold_boots);
  EXPECT_EQ(a.warm_starts, b.warm_starts);
}

// ---------------------------------------------------------------------------
// Hierarchy-shape invariance

// The rack level is pure topology: 1 rack of N shards, 2 racks of N/2, and
// 4 racks of N/4 must produce byte-identical per-node trajectories, because
// routing decisions are made serially at cell level and a shard's nodes all
// live in exactly one rack (Stage B preserves per-queue submission order).
TEST(ShardedClusterTest, HierarchyShapeDoesNotChangeNodeTrajectories) {
  Fixture fx;
  std::vector<uint64_t> aggregate;
  std::vector<std::vector<uint64_t>> per_node;
  for (const size_t rack_count : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedClusterConfig config = BaseConfig(8, RoutingPolicy::kAffinity);
    config.shard_count = 4;  // fixed: only the rack grouping varies
    config.rack_count = rack_count;
    config.inter_rack_delay_ms = 0.5;  // part of network_delay, not on top
    config.threads = 2;
    ShardedCluster cluster(config);
    EXPECT_EQ(cluster.rack_count(), rack_count);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(35));
    aggregate.push_back(cluster.AggregateMetrics().Fingerprint());
    per_node.push_back(cluster.NodeFingerprints());
  }
  EXPECT_EQ(aggregate[0], aggregate[1]);
  EXPECT_EQ(aggregate[0], aggregate[2]);
  EXPECT_EQ(per_node[0], per_node[1]);
  EXPECT_EQ(per_node[0], per_node[2]);
}

// Same invariance on the barrier path: least-loaded reads node state at
// quiesced instants, and the snapshot it sees must not depend on how shards
// are grouped into racks.
TEST(ShardedClusterTest, HierarchyShapeInvariantUnderLeastLoaded) {
  Fixture fx;
  std::vector<std::vector<uint64_t>> per_node;
  for (const size_t rack_count : {size_t{1}, size_t{4}}) {
    ShardedClusterConfig config = BaseConfig(8, RoutingPolicy::kLeastLoaded);
    config.shard_count = 4;
    config.rack_count = rack_count;
    config.threads = 3;
    ShardedCluster cluster(config);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(35));
    per_node.push_back(cluster.NodeFingerprints());
  }
  EXPECT_EQ(per_node[0], per_node[1]);
}

// ---------------------------------------------------------------------------
// Crash plans (migration barriers)

ShardedClusterConfig CrashConfig(size_t nodes, RoutingPolicy routing) {
  ShardedClusterConfig config = BaseConfig(nodes, routing);
  config.node.faults.node_crash_mtbf_seconds = 12.0;
  config.node.faults.node_crash_horizon = 40 * kSecond;
  config.node.faults.node_restart_delay = 2 * kSecond;
  return config;
}

// The headline lift over PR 6: node-crash plans no longer abort, and the
// determinism contract survives them — serial and N-thread runs are
// byte-identical at every hierarchy shape, because crashes and restarts are
// full barriers at precomputed instants.
TEST(ShardedClusterTest, CrashPlanIsDeterministicAcrossShapesAndThreads) {
  Fixture fx;
  std::vector<uint64_t> aggregate;
  std::vector<std::vector<uint64_t>> per_node;
  struct Shape {
    size_t racks;
    size_t threads;
  };
  for (const Shape shape : {Shape{1, 1}, Shape{1, 4}, Shape{4, 1}, Shape{4, 4}}) {
    ShardedClusterConfig config = CrashConfig(8, RoutingPolicy::kAffinity);
    config.shard_count = 4;
    config.rack_count = shape.racks;
    config.threads = shape.threads;
    ShardedCluster cluster(config);
    cluster.set_check_invariants(true);
    cluster.BeginMeasurement();
    Replay(&cluster, fx.arrivals, FromSeconds(50));
    const PlatformMetrics total = cluster.AggregateMetrics();
    EXPECT_GT(total.node_crashes, 0u) << "plan produced no crashes in the window";
    aggregate.push_back(total.Fingerprint());
    per_node.push_back(cluster.NodeFingerprints());
  }
  for (size_t i = 1; i < aggregate.size(); ++i) {
    EXPECT_EQ(aggregate[0], aggregate[i]) << "shape " << i;
    EXPECT_EQ(per_node[0], per_node[i]) << "shape " << i;
  }
}

// Parity with the shared-timeline Cluster: the outage schedule is the same
// pure function of the plan in both engines, so a fully drained run must
// agree on the crash count, and no request may leak — everything submitted
// terminates as completed, failed, or dropped in both engines.
TEST(ShardedClusterTest, CrashPlanParityWithCluster) {
  Fixture fx;
  ShardedClusterConfig sharded_config = CrashConfig(4, RoutingPolicy::kAffinity);
  sharded_config.shard_count = 1;
  sharded_config.network_delay = 0;  // Cluster routes with no network delay
  ShardedCluster sharded(sharded_config);
  sharded.set_check_invariants(true);
  sharded.BeginMeasurement();
  for (const TraceArrival& a : fx.arrivals) {
    sharded.Submit(a.workload, a.time);
  }
  sharded.Run();

  ClusterConfig cluster_config;
  cluster_config.node_count = 4;
  cluster_config.routing = RoutingPolicy::kAffinity;
  cluster_config.node = sharded_config.node;
  Cluster cluster(cluster_config);
  cluster.set_check_invariants(true);
  cluster.BeginMeasurement();
  for (const TraceArrival& a : fx.arrivals) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.Run();

  const PlatformMetrics a = sharded.AggregateMetrics();
  const PlatformMetrics b = cluster.AggregateMetrics();
  EXPECT_EQ(a.node_crashes, b.node_crashes);
  EXPECT_GT(a.node_crashes, 0u);
  const uint64_t submitted = fx.arrivals.size();
  EXPECT_EQ(a.requests_completed + a.requests_failed + a.requests_dropped, submitted);
  EXPECT_EQ(b.requests_completed + b.requests_failed + b.requests_dropped, submitted);
  EXPECT_EQ(sharded.pending_count(), 0u);
}

// The router consults the precomputed down windows at each arrival's
// delivery time, so pre-routed arrivals divert around planned outages and
// the per-node failover buffers stay a backstop, not a hot path: every
// migrated request must come from a crash draining in-flight work.
TEST(ShardedClusterTest, CrashPlanReportsMigrationStats) {
  Fixture fx;
  ShardedClusterConfig config = CrashConfig(8, RoutingPolicy::kRoundRobin);
  config.shard_count = 4;
  config.rack_count = 2;
  ShardedCluster cluster(config);
  cluster.BeginMeasurement();
  Replay(&cluster, fx.arrivals, FromSeconds(50));
  const RouterStats stats = cluster.router_stats();
  EXPECT_GT(stats.migration_barriers, 0u);
  // Every planned outage is two barriers (crash + restart).
  EXPECT_EQ(stats.migration_barriers % 2, 0u);
}

// ---------------------------------------------------------------------------
// Guard rails

TEST(ShardedClusterDeathTest, ZeroNodesAbort) {
  ShardedClusterConfig config;
  config.node_count = 0;
  EXPECT_DEATH(ShardedCluster{config}, "node_count");
}

TEST(ShardedClusterDeathTest, ZeroRacksAbort) {
  ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kAffinity);
  config.rack_count = 0;
  EXPECT_DEATH(ShardedCluster{config}, "rack_count must be >= 1");
}

TEST(ShardedClusterDeathTest, MoreRacksThanNodesAbort) {
  ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kAffinity);
  config.rack_count = 5;
  EXPECT_DEATH(ShardedCluster{config}, "exceeds node_count");
}

TEST(ShardedClusterDeathTest, InvalidInterRackDelayAborts) {
  ShardedClusterConfig config = BaseConfig(4, RoutingPolicy::kAffinity);
  // NaN compares false to everything, so a plain `>= 0` check would wave it
  // through — the validator must catch it explicitly.
  config.inter_rack_delay_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(ShardedCluster{config}, "inter_rack_delay_ms must be finite");
  config.inter_rack_delay_ms = -1.0;
  EXPECT_DEATH(ShardedCluster{config}, "inter_rack_delay_ms must be finite");
  // The cell->rack leg cannot exceed the whole controller->node delay.
  config.inter_rack_delay_ms = ToMillis(config.network_delay) + 1.0;
  EXPECT_DEATH(ShardedCluster{config}, "exceeds the total");
}

TEST(ShardedClusterDeathTest, SubmittingIntoThePastAborts) {
  Fixture fx(20, 5);
  ShardedCluster cluster(BaseConfig(2, RoutingPolicy::kAffinity));
  cluster.RunUntil(FromSeconds(10));
  EXPECT_DEATH(cluster.Submit(&fx.population.workloads()[0], FromSeconds(5)),
               "before the simulated frontier");
}

}  // namespace
}  // namespace desiccant
