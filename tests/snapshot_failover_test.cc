// Failover semantics of the cell-shared snapshot fabric at cluster scope:
// under a node-crash plan, siblings restoring a crashed node's functions must
// fetch the shared copy instead of cold-booting (fallback_boots strictly
// below the private-store baseline), and the Cluster / ShardedCluster engines
// must agree on the restore counters — serial and multi-threaded, clean and
// under a tier brown-out plan.
#include <gtest/gtest.h>

#include <vector>

#include "src/faas/cluster.h"
#include "src/faas/sharded_cluster.h"
#include "src/trace/population.h"

namespace desiccant {
namespace {

struct Fixture {
  Fixture()
      : population(PopulationConfig::AzureLike(/*functions=*/40, /*seed=*/77)),
        arrivals(population.GenerateArrivals(6.0, 0, FromSeconds(60))) {}

  SyntheticPopulation population;
  std::vector<TraceArrival> arrivals;
};

PlatformConfig SnapshotCrashNode(bool fabric) {
  PlatformConfig node;
  node.cpu_cores = 2.0;
  node.cache_capacity_bytes = 256 * kMiB;  // small cache: frequent cold boots
  node.keep_alive = 2 * kSecond;
  node.snapstart_restore = true;
  node.snapshot = SnapshotConfig::ThreeTier();
  node.snapshot.fabric.enabled = fabric;
  node.snapshot.fabric.rack_count = 2;
  node.snapshot.fabric.replication_factor = 2;
  node.faults.node_crash_mtbf_seconds = 12.0;
  node.faults.node_crash_horizon = 60 * kSecond;
  node.faults.node_restart_delay = 2 * kSecond;
  return node;
}

PlatformMetrics RunCluster(const Fixture& fx, const PlatformConfig& node) {
  ClusterConfig config;
  config.node_count = 4;
  config.routing = RoutingPolicy::kAffinity;
  config.node = node;
  Cluster cluster(config);
  cluster.set_check_invariants(true);
  cluster.BeginMeasurement();
  for (const TraceArrival& a : fx.arrivals) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.Run();
  return cluster.AggregateMetrics();
}

PlatformMetrics RunSharded(const Fixture& fx, const PlatformConfig& node, size_t threads) {
  ShardedClusterConfig config;
  config.node_count = 4;
  config.shard_count = 1;
  config.network_delay = 0;  // Cluster routes with no network delay
  config.routing = RoutingPolicy::kAffinity;
  config.threads = threads;
  config.node = node;
  ShardedCluster cluster(config);
  cluster.set_check_invariants(true);
  cluster.BeginMeasurement();
  for (const TraceArrival& a : fx.arrivals) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.Run();
  return cluster.AggregateMetrics();
}

// The acceptance pin for the fabric's reason to exist: with private stores a
// failed-over request attempts a restore (the victim's image is stranded) and
// cold-boots; with the fabric on, the sibling fetches the shared copy.
TEST(SnapshotFailoverTest, FabricCollapsesFailoverFallbackBoots) {
  Fixture fx;
  const PlatformMetrics private_stores = RunCluster(fx, SnapshotCrashNode(/*fabric=*/false));
  const PlatformMetrics shared_fabric = RunCluster(fx, SnapshotCrashNode(/*fabric=*/true));
  ASSERT_GT(private_stores.node_crashes, 0u) << "plan produced no crashes";
  ASSERT_GT(shared_fabric.node_crashes, 0u);
  EXPECT_GT(private_stores.snapshot_fallback_boots, 0u)
      << "stranded failovers should attempt (and miss) a restore";
  EXPECT_LT(shared_fabric.snapshot_fallback_boots, private_stores.snapshot_fallback_boots);
  EXPECT_GT(shared_fabric.snapshot_restores, private_stores.snapshot_restores);
}

// Replaying the same crash plan twice must be byte-identical (the fabric's
// settlement discipline is deterministic).
TEST(SnapshotFailoverTest, FabricCrashReplayIsDeterministic) {
  Fixture fx;
  const PlatformMetrics a = RunCluster(fx, SnapshotCrashNode(/*fabric=*/true));
  const PlatformMetrics b = RunCluster(fx, SnapshotCrashNode(/*fabric=*/true));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// Cluster and ShardedCluster settle the fabric at the same boundaries, so
// the restore counters must match across engines, clean and under a
// brown-out plan. (Full fingerprint parity across engines is not a contract
// under crash plans — the engines re-route failovers at different instants —
// but across thread counts within the sharded engine it is.)
TEST(SnapshotFailoverTest, EnginesAgreeOnFailoverRestores) {
  Fixture fx;
  for (const bool brownout : {false, true}) {
    PlatformConfig node = SnapshotCrashNode(/*fabric=*/true);
    if (brownout) {
      node.faults.fabric_faults = {
          {20 * kSecond, 20 * kSecond, 1, FabricFaultKind::kBrownout, 8.0, 0},
      };
    }
    const PlatformMetrics cluster = RunCluster(fx, node);
    const PlatformMetrics serial = RunSharded(fx, node, 1);
    const PlatformMetrics threaded = RunSharded(fx, node, 4);
    EXPECT_GT(cluster.snapshot_restores, 0u) << "brownout=" << brownout;
    EXPECT_EQ(serial.snapshot_restores, cluster.snapshot_restores) << "brownout=" << brownout;
    EXPECT_EQ(serial.snapshot_fallback_boots, cluster.snapshot_fallback_boots)
        << "brownout=" << brownout;
    EXPECT_EQ(threaded.Fingerprint(), serial.Fingerprint()) << "brownout=" << brownout;
  }
}

}  // namespace
}  // namespace desiccant
