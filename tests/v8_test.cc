// Tests for the V8-style engine: scavenging, the growth/shrink policies that
// create frozen garbage, weak references, and the reclaim interface.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/v8/v8_runtime.h"

namespace desiccant {
namespace {

V8Config TestConfig() { return V8Config::ForInstanceBudget(256 * kMiB); }

class V8Test : public ::testing::Test {
 protected:
  V8Test() : vas_(&registry_), runtime_(&vas_, &clock_, TestConfig(), &registry_) {}

  // Allocates `total` bytes of garbage in `size`-byte objects, advancing the
  // clock by `ms` to model compute (and hence an allocation rate).
  void Churn(uint64_t total, uint32_t size, double ms) {
    const uint64_t count = total / size;
    for (uint64_t i = 0; i < count; ++i) {
      runtime_.AllocateObject(size);
      clock_.AdvanceBy(FromMillis(ms / static_cast<double>(count)));
    }
  }

  SharedFileRegistry registry_;
  SimClock clock_;
  VirtualAddressSpace vas_;
  V8Runtime runtime_;
};

TEST_F(V8Test, ConfigDerivesSemispaceCap) {
  // 256 MiB budget -> 230 MiB heap -> heap/16 ~= 14.25 MiB, chunk-aligned.
  const V8Config config = TestConfig();
  EXPECT_EQ(config.EffectiveMaxSemispace() % kChunkSize, 0u);
  EXPECT_LE(config.EffectiveMaxSemispace(), config.max_heap_bytes / 16);
  // Larger budgets scale the cap with heap/16 (chunk-aligned).
  const V8Config big = V8Config::ForInstanceBudget(1024 * kMiB);
  EXPECT_EQ(big.EffectiveMaxSemispace(),
            big.max_heap_bytes / 16 / kChunkSize * kChunkSize);
  EXPECT_GT(big.EffectiveMaxSemispace(), config.EffectiveMaxSemispace());
}

TEST_F(V8Test, StartsSmall) {
  EXPECT_EQ(runtime_.semispace_size(), TestConfig().initial_semispace_bytes);
  EXPECT_EQ(runtime_.GetHeapStats().young_gc_count, 0u);
}

TEST_F(V8Test, AllocatesInFromSpace) {
  runtime_.AllocateObject(1024);
  EXPECT_EQ(runtime_.from_space().used_bytes(), 1024u);
}

TEST_F(V8Test, ScavengeCollectsGarbage) {
  Churn(4 * kMiB, 8 * kKiB, 1.0);
  const HeapStats stats = runtime_.GetHeapStats();
  EXPECT_GE(stats.young_gc_count, 1u);
  // Nothing was rooted: tracing finds nothing, and a collection leaves the
  // new space empty (only the post-GC allocation tail would remain).
  EXPECT_EQ(runtime_.ExactLiveBytes(), 0u);
  runtime_.CollectGarbage(false);
  EXPECT_EQ(runtime_.from_space().used_bytes(), 0u);
}

TEST_F(V8Test, RootedObjectsSurviveScavenges) {
  SimObject* live = runtime_.AllocateObject(100 * kKiB);
  runtime_.strong_roots().Create(live);
  Churn(4 * kMiB, 8 * kKiB, 1.0);
  EXPECT_EQ(runtime_.ExactLiveBytes(), 100 * kKiB);
}

TEST_F(V8Test, SurvivorsPromoteAfterTwoScavenges) {
  SimObject* live = runtime_.AllocateObject(100 * kKiB);
  runtime_.strong_roots().Create(live);
  Churn(8 * kMiB, 8 * kKiB, 1.0);  // several scavenges
  EXPECT_GE(runtime_.GetHeapStats().young_gc_count, 2u);
  EXPECT_EQ(runtime_.old_space().used_bytes(), 100 * kKiB);
}

TEST_F(V8Test, YoungGenerationDoublesUnderHighAllocationRate) {
  // High allocation rate: accumulated live keeps pace and semispaces double.
  SimObject* live = runtime_.AllocateObject(200 * kKiB);
  runtime_.strong_roots().Create(live);
  const uint64_t initial = runtime_.semispace_size();
  // Lots of allocation with a live working set, in very little time.
  std::vector<RootTable::Handle> window;
  for (int i = 0; i < 3000; ++i) {
    SimObject* obj = runtime_.AllocateObject(8 * kKiB);
    if (window.size() < 128) {
      window.push_back(runtime_.strong_roots().Create(obj));
    } else {
      runtime_.strong_roots().Set(window[i % window.size()], obj);
    }
    clock_.AdvanceBy(2 * kMicrosecond);
  }
  EXPECT_GT(runtime_.semispace_size(), initial);
}

TEST_F(V8Test, ShrinkRefusedWhileAllocationRateHigh) {
  // Inflate the young generation, then GC with almost no elapsed time: the
  // §3.2.2 pathology — the young generation cannot shrink.
  std::vector<RootTable::Handle> window;
  for (int i = 0; i < 3000; ++i) {
    SimObject* obj = runtime_.AllocateObject(8 * kKiB);
    if (window.size() < 128) {
      window.push_back(runtime_.strong_roots().Create(obj));
    } else {
      runtime_.strong_roots().Set(window[i % window.size()], obj);
    }
    clock_.AdvanceBy(2 * kMicrosecond);
  }
  const uint64_t inflated = runtime_.semispace_size();
  ASSERT_GT(inflated, TestConfig().initial_semispace_bytes);
  runtime_.CollectGarbage(false);  // alloc rate still reads as hot
  EXPECT_EQ(runtime_.semispace_size(), inflated);
}

TEST_F(V8Test, ShrinksWhenAllocationRateLow) {
  std::vector<RootTable::Handle> window;
  for (int i = 0; i < 3000; ++i) {
    SimObject* obj = runtime_.AllocateObject(8 * kKiB);
    if (window.size() < 16) {
      window.push_back(runtime_.strong_roots().Create(obj));
    } else {
      runtime_.strong_roots().Set(window[i % window.size()], obj);
    }
    clock_.AdvanceBy(2 * kMicrosecond);
  }
  const uint64_t inflated = runtime_.semispace_size();
  ASSERT_GT(inflated, TestConfig().initial_semispace_bytes);
  // A long quiet period makes the allocation rate low; the next GC shrinks.
  clock_.AdvanceBy(10 * kSecond);
  runtime_.CollectGarbage(false);
  EXPECT_LT(runtime_.semispace_size(), inflated);
}

TEST_F(V8Test, EmptyChunksReleasedByFullGc) {
  // Promote a lot into old space, drop it, full GC: empty chunks unmapped.
  std::vector<RootTable::Handle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(runtime_.strong_roots().Create(runtime_.AllocateObject(64 * kKiB)));
  }
  Churn(6 * kMiB, 8 * kKiB, 1.0);  // scavenges promote the rooted set
  ASSERT_GT(runtime_.old_space().CommittedBytes(), 0u);
  const uint64_t committed_before = runtime_.old_space().CommittedBytes();
  for (const RootTable::Handle h : handles) {
    runtime_.strong_roots().Destroy(h);
  }
  runtime_.CollectGarbage(false);
  EXPECT_LT(runtime_.old_space().CommittedBytes(), committed_before);
}

TEST_F(V8Test, LargeObjectsUseLos) {
  SimObject* big = runtime_.AllocateObject(1 * kMiB);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(runtime_.large_object_space().used_bytes(), 1 * kMiB);
  EXPECT_EQ(runtime_.from_space().used_bytes(), 0u);
}

TEST_F(V8Test, DeadLargeObjectsUnmapped) {
  runtime_.AllocateObject(1 * kMiB);  // garbage
  runtime_.CollectGarbage(false);
  EXPECT_EQ(runtime_.large_object_space().used_bytes(), 0u);
  EXPECT_EQ(runtime_.large_object_space().CommittedBytes(), 0u);
}

TEST_F(V8Test, GlobalGcIsAggressiveOnWeakRoots) {
  SimObject* cache = runtime_.AllocateObject(128 * kKiB);
  runtime_.weak_roots().Create(cache);
  EXPECT_DOUBLE_EQ(runtime_.ExecMultiplier(), 2.5);  // still cold
  runtime_.CollectGarbage(/*aggressive=*/true);
  EXPECT_FALSE(runtime_.weak_roots().AnyNonNull());
  EXPECT_EQ(runtime_.ExactLiveBytes(), 0u);
}

TEST_F(V8Test, DeoptPenaltyAfterAggressiveGc) {
  // Warm up past the JIT window first.
  for (int i = 0; i < 20; ++i) {
    runtime_.BeginInvocation();
    runtime_.EndInvocation();
  }
  EXPECT_DOUBLE_EQ(runtime_.ExecMultiplier(), 1.0);
  runtime_.weak_roots().Create(runtime_.AllocateObject(64 * kKiB));
  runtime_.CollectGarbage(/*aggressive=*/true);
  EXPECT_GT(runtime_.ExecMultiplier(), 1.0);
  // The penalty decays over subsequent invocations.
  for (int i = 0; i < 20; ++i) {
    runtime_.BeginInvocation();
    runtime_.EndInvocation();
  }
  EXPECT_DOUBLE_EQ(runtime_.ExecMultiplier(), 1.0);
}

TEST_F(V8Test, NonAggressiveReclaimKeepsWeakRoots) {
  SimObject* cache = runtime_.AllocateObject(128 * kKiB);
  runtime_.weak_roots().Create(cache);
  runtime_.Reclaim({});  // Desiccant default: aggressive = false (§4.7)
  EXPECT_TRUE(runtime_.weak_roots().AnyNonNull());
  EXPECT_EQ(runtime_.ExactLiveBytes(), 128 * kKiB);
}

TEST_F(V8Test, ReclaimShrinksFrozenYoungGeneration) {
  // Inflate the young generation with a hot loop, then reclaim while "frozen"
  // (no time passes, allocation rate still reads hot): Desiccant's
  // freeze-aware shrink ignores the rate and releases the memory anyway.
  std::vector<RootTable::Handle> window;
  for (int i = 0; i < 3000; ++i) {
    SimObject* obj = runtime_.AllocateObject(8 * kKiB);
    if (window.size() < 128) {
      window.push_back(runtime_.strong_roots().Create(obj));
    } else {
      runtime_.strong_roots().Set(window[i % window.size()], obj);
    }
    clock_.AdvanceBy(2 * kMicrosecond);
  }
  for (const RootTable::Handle h : window) {
    runtime_.strong_roots().Set(h, nullptr);
  }
  const uint64_t inflated = runtime_.semispace_size();
  const uint64_t resident_before = runtime_.HeapResidentBytes();
  const ReclaimResult result = runtime_.Reclaim({});
  EXPECT_GT(result.released_pages, 0u);
  EXPECT_LT(runtime_.semispace_size(), inflated);
  EXPECT_LT(runtime_.HeapResidentBytes(), resident_before / 2);
}

TEST_F(V8Test, ReclaimKeepsMetadataPages) {
  Churn(2 * kMiB, 8 * kKiB, 1.0);
  runtime_.Reclaim({});
  // Every mapped chunk keeps its 4 KiB metadata page resident.
  uint64_t mapped_chunks = runtime_.from_space().chunks().size() +
                           runtime_.to_space().chunks().size();
  for (const auto& chunk : runtime_.old_space().chunks()) {
    (void)chunk;
    ++mapped_chunks;
  }
  EXPECT_GE(runtime_.HeapResidentBytes(), mapped_chunks * kChunkMetadataBytes);
}

TEST_F(V8Test, ReclaimedHeapIsReusable) {
  Churn(4 * kMiB, 8 * kKiB, 1.0);
  runtime_.Reclaim({});
  SimObject* obj = runtime_.AllocateObject(16 * kKiB);
  EXPECT_NE(obj, nullptr);
  EXPECT_EQ(runtime_.from_space().used_bytes(), 16 * kKiB);
}

TEST_F(V8Test, StatsAreCoherent) {
  Churn(4 * kMiB, 8 * kKiB, 1.0);
  const HeapStats stats = runtime_.GetHeapStats();
  EXPECT_GT(stats.committed_bytes, 0u);
  EXPECT_LE(stats.resident_bytes, stats.committed_bytes);
  EXPECT_GT(stats.total_gc_time, 0u);
  EXPECT_EQ(stats.young_capacity, 2 * runtime_.semispace_size());
}

TEST_F(V8Test, StoreBufferKeepsOldToYoungTargetsAlive) {
  // Promote a parent, then link it to a fresh young child via the write
  // barrier: scavenges must keep the child alive through the store buffer.
  SimObject* parent = runtime_.AllocateObject(64 * kKiB);
  runtime_.strong_roots().Create(parent);
  Churn(6 * kMiB, 8 * kKiB, 1.0);  // several scavenges -> parent promotes
  ASSERT_EQ(parent->space, 1);

  SimObject* child = runtime_.AllocateObject(32 * kKiB);
  parent->AddRef(child);
  runtime_.WriteBarrier(parent, child);
  EXPECT_GE(runtime_.remembered_set().size(), 1u);
  Churn(4 * kMiB, 8 * kKiB, 1.0);
  // The child survived (it may itself have been promoted by now).
  EXPECT_EQ(runtime_.ExactLiveBytes(), static_cast<uint64_t>(64 * kKiB + 32 * kKiB));
}

TEST_F(V8Test, FullGcRebuildsStoreBuffer) {
  SimObject* parent = runtime_.AllocateObject(64 * kKiB);
  runtime_.strong_roots().Create(parent);
  Churn(6 * kMiB, 8 * kKiB, 1.0);
  ASSERT_EQ(parent->space, 1);
  SimObject* child = runtime_.AllocateObject(32 * kKiB);
  parent->AddRef(child);
  runtime_.WriteBarrier(parent, child);
  runtime_.CollectGarbage(false);
  // If the child is still young after the full GC, the rebuilt store buffer
  // must cover the edge; either way nothing was lost.
  if (child->space == 0) {
    EXPECT_GE(runtime_.remembered_set().size(), 1u);
  }
  EXPECT_EQ(runtime_.ExactLiveBytes(), static_cast<uint64_t>(64 * kKiB + 32 * kKiB));
}

TEST_F(V8Test, LanguageAndBoot) {
  EXPECT_EQ(runtime_.language(), Language::kJavaScript);
  EXPECT_LT(runtime_.BootCost(), 300 * kMillisecond);
  EXPECT_NE(runtime_.image_region(), kInvalidRegionId);
}

// ---------------------------------------------------------------------------
// Property sweep: random traffic, liveness preserved, reclaim sound.

class V8PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(V8PropertyTest, LivenessPreservedUnderRandomTraffic) {
  Rng rng(GetParam());
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  V8Runtime runtime(&vas, &clock, TestConfig(), &registry);

  std::vector<std::pair<RootTable::Handle, uint32_t>> rooted;
  uint64_t rooted_bytes = 0;

  for (int step = 0; step < 3000; ++step) {
    clock.AdvanceBy(rng.UniformU64(1, 20) * kMicrosecond);
    const double action = rng.NextDouble();
    if (action < 0.70) {
      runtime.AllocateObject(static_cast<uint32_t>(rng.UniformU64(64, 24 * kKiB)));
    } else if (action < 0.90 || rooted.empty()) {
      if (rooted_bytes < 10 * kMiB) {
        const auto size = static_cast<uint32_t>(rng.UniformU64(64, 24 * kKiB));
        SimObject* obj = runtime.AllocateObject(size);
        rooted.emplace_back(runtime.strong_roots().Create(obj), size);
        rooted_bytes += size;
      }
    } else if (action < 0.97) {
      const size_t i = rng.UniformU64(0, rooted.size() - 1);
      runtime.strong_roots().Destroy(rooted[i].first);
      rooted_bytes -= rooted[i].second;
      rooted[i] = rooted.back();
      rooted.pop_back();
    } else {
      runtime.CollectGarbage(false);
    }
    if (step % 500 == 499) {
      EXPECT_EQ(runtime.ExactLiveBytes(), rooted_bytes);
      runtime.Reclaim({});
      EXPECT_EQ(runtime.ExactLiveBytes(), rooted_bytes);
      EXPECT_GE(runtime.GetHeapStats().committed_bytes, rooted_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, V8PropertyTest, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace desiccant
