// Figure 13: execution overhead after reclamation (§5.6). Each function runs
// 130 times, is reclaimed, and runs 10 more; the average post-reclaim latency
// is compared with the average over the last 10 pre-reclaim executions.
// The paper reports 8.3% average overhead, a swap baseline 2.37x slower on
// sort, and 2.14x / 1.74x slowdowns for data-analysis / unionfind when the
// §4.7 non-aggressive option is disabled.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr int kWarmIterations = 130;
constexpr int kAfterIterations = 10;

struct Row {
  std::string name;
  Language language;
  double overhead_pct;
};

std::vector<Row> g_rows;
double g_swap_vs_desiccant = 0.0;
std::vector<std::pair<std::string, double>> g_aggressive_slowdowns;

// Returns {avg of last 10 pre-reclaim durations, avg of post-reclaim ones}.
std::pair<SimTime, SimTime> MeasureAround(ChainStudy& study, bool aggressive) {
  SimTime before = 0;
  for (int i = 0; i < kWarmIterations; ++i) {
    const SimTime d = study.Step().duration;
    if (i >= kWarmIterations - 10) {
      before += d;
    }
  }
  study.ReclaimAll(ReclaimOptions{.aggressive = aggressive});
  SimTime after = 0;
  for (int i = 0; i < kAfterIterations; ++i) {
    after += study.Step().duration;
  }
  return {before / 10, after / kAfterIterations};
}

void RunFunction(const WorkloadSpec* w) {
  StudyConfig config;
  ChainStudy study(*w, config);
  const auto [before, after] = MeasureAround(study, /*aggressive=*/false);
  const double overhead =
      (static_cast<double>(after) / static_cast<double>(before) - 1.0) * 100.0;
  g_rows.push_back({w->name, w->language, overhead});
}

void RunSwapBaseline() {
  const WorkloadSpec* w = FindWorkload("sort");
  StudyConfig config;
  // Desiccant path.
  ChainStudy reclaimed(*w, config);
  for (int i = 0; i < kWarmIterations; ++i) {
    reclaimed.Step();
  }
  const ReclaimResult result = reclaimed.ReclaimAll();
  SimTime desiccant_after = 0;
  for (int i = 0; i < kAfterIterations; ++i) {
    desiccant_after += reclaimed.Step().duration;
  }
  // Swap path: the OS pushes out the same amount, semantics-blind.
  ChainStudy swapped(*w, config);
  for (int i = 0; i < kWarmIterations; ++i) {
    swapped.Step();
  }
  swapped.SwapOutAll(result.released_pages);
  SimTime swap_after = 0;
  for (int i = 0; i < kAfterIterations; ++i) {
    swap_after += swapped.Step().duration;
  }
  g_swap_vs_desiccant = static_cast<double>(swap_after) / desiccant_after;
}

void RunAggressiveAblation(const char* name) {
  const WorkloadSpec* w = FindWorkload(name);
  StudyConfig config;
  ChainStudy gentle(*w, config);
  ChainStudy aggressive(*w, config);
  const auto [g_before, g_after] = MeasureAround(gentle, /*aggressive=*/false);
  const auto [a_before, a_after] = MeasureAround(aggressive, /*aggressive=*/true);
  (void)g_before;
  (void)a_before;
  g_aggressive_slowdowns.emplace_back(name, static_cast<double>(a_after) / g_after);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const WorkloadSpec& w : WorkloadSuite()) {
    const WorkloadSpec* ptr = &w;
    RegisterExperiment("fig13/overhead/" + w.name, [ptr] { RunFunction(ptr); });
  }
  RegisterExperiment("fig13/swap-baseline", [] { RunSwapBaseline(); });
  RegisterExperiment("fig13/aggressive/data-analysis",
                     [] { RunAggressiveAblation("data-analysis"); });
  RegisterExperiment("fig13/aggressive/unionfind", [] { RunAggressiveAblation("unionfind"); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"function", "language", "post_reclaim_overhead_pct"});
  double sum = 0.0;
  for (const Row& row : g_rows) {
    table.AddRow({row.name, LanguageName(row.language), Table::Fmt(row.overhead_pct, 1)});
    sum += row.overhead_pct;
  }
  table.AddRow({"MEAN", "", Table::Fmt(sum / g_rows.size(), 1)});
  table.Print("Figure 13: execution overhead after reclamation");

  Table extras({"comparison", "factor"});
  extras.AddRow({"swap baseline vs Desiccant (sort)", Table::Fmt(g_swap_vs_desiccant)});
  for (const auto& [name, factor] : g_aggressive_slowdowns) {
    extras.AddRow({"aggressive vs non-aggressive reclaim (" + name + ")",
                   Table::Fmt(factor)});
  }
  extras.Print("Figure 13 (cont.): swap baseline and the §4.7 ablation");
  return 0;
}
