// Figure 1: the frozen-garbage ratios (§3.1).
//
// For every Table 1 function, 100 invocations in a 256 MiB instance; the
// reported ratios compare the real execution's USS with the ideal (live
// contents only) after each exit point:
//   avg_ratio = mean over iterations, max_ratio = maximum over iterations.
// The paper reports mean-of-max 2.72 for Java (63.2% frozen garbage) and
// 2.15 for JavaScript (53.5%).
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string name;
  Language language;
  double avg_ratio;
  double max_ratio;
};

std::vector<Row> g_rows;

void RunLanguage(Language language) {
  for (const WorkloadSpec* w : SuiteByLanguage(language)) {
    const SingleFunctionResult r = RunSingleFunction(*w);
    g_rows.push_back({w->name, language, r.avg_ratio, r.max_ratio});
  }
}

void PrintTables() {
  for (const Language language : {Language::kJava, Language::kJavaScript}) {
    Table table({"function", "avg_ratio", "max_ratio"});
    double avg_sum = 0.0;
    double max_sum = 0.0;
    int count = 0;
    for (const Row& row : g_rows) {
      if (row.language != language) {
        continue;
      }
      table.AddRow({row.name, Table::Fmt(row.avg_ratio), Table::Fmt(row.max_ratio)});
      avg_sum += row.avg_ratio;
      max_sum += row.max_ratio;
      ++count;
    }
    table.AddRow({"MEAN", Table::Fmt(avg_sum / count), Table::Fmt(max_sum / count)});
    table.Print(std::string("Figure 1") + (language == Language::kJava ? "a" : "b") +
                ": frozen garbage ratios (" + LanguageName(language) + ")");
    const double frozen_fraction = 1.0 - 1.0 / (max_sum / count);
    std::printf("mean max_ratio %.2f => %.1f%% of memory is frozen garbage at peak\n\n",
                max_sum / count, frozen_fraction * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterExperiment("fig01/java", [] { RunLanguage(Language::kJava); });
  RegisterExperiment("fig01/javascript", [] { RunLanguage(Language::kJavaScript); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTables();
  return 0;
}
