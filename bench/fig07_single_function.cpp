// Figure 7: single instance memory after 100 repetitive executions (§5.2):
// vanilla vs eager vs Desiccant vs ideal, per function. The paper reports
// Desiccant reductions of 1.21-4.57x for Java (2.78x average) and 1.51-3.04x
// for JavaScript (1.93x average), landing within 0.1% (Java) / 6.4% (JS) of
// the ideal.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string name;
  Language language;
  SingleFunctionResult result;
};

std::vector<Row> g_rows;

void RunLanguage(Language language) {
  for (const WorkloadSpec* w : SuiteByLanguage(language)) {
    g_rows.push_back({w->name, language, RunSingleFunction(*w)});
  }
}

void PrintTables() {
  for (const Language language : {Language::kJava, Language::kJavaScript}) {
    Table table({"function", "vanilla_mib", "eager_mib", "desiccant_mib", "ideal_mib",
                 "reduction_vs_vanilla", "reduction_vs_eager", "gap_to_ideal_pct"});
    double reduction_v = 0.0;
    double reduction_e = 0.0;
    double gap = 0.0;
    int count = 0;
    for (const Row& row : g_rows) {
      if (row.language != language) {
        continue;
      }
      const SingleFunctionResult& r = row.result;
      const double rv = static_cast<double>(r.vanilla.uss) / r.desiccant.uss;
      const double re = static_cast<double>(r.eager.uss) / r.desiccant.uss;
      const double g =
          (static_cast<double>(r.desiccant.uss) / r.desiccant.ideal_uss - 1.0) * 100.0;
      table.AddRow({row.name, Table::Fmt(ToMiB(r.vanilla.uss)), Table::Fmt(ToMiB(r.eager.uss)),
                    Table::Fmt(ToMiB(r.desiccant.uss)), Table::Fmt(ToMiB(r.desiccant.ideal_uss)),
                    Table::Fmt(rv), Table::Fmt(re), Table::Fmt(g, 1)});
      reduction_v += rv;
      reduction_e += re;
      gap += g;
      ++count;
    }
    table.AddRow({"MEAN", "", "", "", "", Table::Fmt(reduction_v / count),
                  Table::Fmt(reduction_e / count), Table::Fmt(gap / count, 1)});
    table.Print(std::string("Figure 7") + (language == Language::kJava ? "a" : "b") +
                ": memory after 100 executions (" + LanguageName(language) + ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterExperiment("fig07/java", [] { RunLanguage(Language::kJava); });
  RegisterExperiment("fig07/javascript", [] { RunLanguage(Language::kJavaScript); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTables();
  return 0;
}
