// Extension: the trace replay under node-level physical memory pressure.
//
// The grid sweeps the node page budget x swap capacity x memory manager and
// reports what the pressure model adds on top of the fault taxonomy: goodput,
// OOM kills split by victim state, kswapd/direct-reclaim volume, and the
// direct-reclaim stall time charged to faulting mutators. The headline
// comparison is Desiccant-on vs Desiccant-off at an equal finite budget:
// reclaiming frozen garbage lowers node residency, so the same budget yields
// fewer direct-reclaim stalls and fewer pressure OOM kills — i.e. higher
// goodput from the same physical machine.
//
// The `off` rows run with the model disabled (page_budget = 0) and double as
// the byte-exactness anchor: their tables must be identical to a build
// without the pressure subsystem. Every cell also replays itself with the
// same seed and reports fingerprint equality in the `replay` column.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Cell {
  uint64_t budget_mib = 0;  // 0 = pressure model off
  uint64_t swap_mib = 0;
  MemoryMode mode = MemoryMode::kVanilla;
};

struct Row {
  Cell cell;
  ReplayResult r;
  bool replay_identical = false;
};

std::vector<Row> g_rows;

void RunCell(size_t slot, const Cell& cell) {
  ReplayConfig config;
  config.mode = cell.mode;
  config.node_budget_mib = cell.budget_mib;
  config.swap_mib = cell.swap_mib;
  const ReplayResult first = RunReplay(config);
  const ReplayResult second = RunReplay(config);
  g_rows[slot] = {cell, first,
                  first.metrics.Fingerprint() == second.metrics.Fingerprint()};
}

std::string BudgetName(const Cell& cell) {
  if (cell.budget_mib == 0) {
    return "off";
  }
  return std::to_string(cell.budget_mib) + "mib/swap" + std::to_string(cell.swap_mib);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<Cell> grid;
  for (const MemoryMode mode : {MemoryMode::kVanilla, MemoryMode::kDesiccant}) {
    grid.push_back({0, 0, mode});  // model off: the byte-exactness anchor
  }
  // Finite budgets below the ~2.3 GiB the vanilla replay peaks at, so the
  // reclaim ladder actually runs; two swap sizes per budget to show the
  // kNoMemory cliff when the device is small.
  for (const uint64_t budget_mib : {2048ull, 1536ull}) {
    for (const uint64_t swap_mib : {512ull, 2048ull}) {
      for (const MemoryMode mode : {MemoryMode::kVanilla, MemoryMode::kDesiccant}) {
        grid.push_back({budget_mib, swap_mib, mode});
      }
    }
  }

  std::vector<ExperimentCell> cells;
  for (const Cell& cell : grid) {
    const size_t slot = cells.size();
    cells.push_back({std::string("ext_pressure/") + BudgetName(cell) + "/" +
                         MemoryModeName(cell.mode),
                     [slot, cell] { RunCell(slot, cell); }});
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const FaultCostModel costs;
  Table table({"budget_mib", "swap_mib", "mode", "ok", "goodput_rps", "throughput_rps",
               "oom_kills", "oom_frozen", "oom_running", "kswapd_pages", "direct_reclaims",
               "direct_stall_ms", "swap_out_pages", "commit_failures", "reclaims",
               "node_acts", "replay"});
  for (const Row& row : g_rows) {
    const PlatformMetrics& m = row.r.metrics;
    const double stall_ms =
        ToSeconds(row.r.pressure.direct_reclaim_pages * costs.direct_reclaim_page_cost) *
        1000.0;
    table.AddRow({row.cell.budget_mib == 0 ? "off" : std::to_string(row.cell.budget_mib),
                  std::to_string(row.cell.swap_mib), MemoryModeName(row.cell.mode),
                  std::to_string(m.requests_completed), Table::Fmt(m.GoodputRps()),
                  Table::Fmt(m.ThroughputRps()), std::to_string(m.oom_kills),
                  std::to_string(m.oom_kills_frozen), std::to_string(m.oom_kills_running),
                  std::to_string(row.r.pressure.kswapd_pages),
                  std::to_string(row.r.pressure.direct_reclaim_events),
                  Table::Fmt(stall_ms), std::to_string(row.r.pressure.swap_out_pages),
                  std::to_string(row.r.pressure.commit_failures),
                  std::to_string(row.r.desiccant_reclaim_requests),
                  std::to_string(row.r.node_pressure_activations),
                  row.replay_identical ? "1" : "0"});
  }
  table.Print(
      "Extension: node memory pressure at SF 15 — budget x swap x manager "
      "(off = infinite memory baseline)");
  return 0;
}
