// Extension (§7): the frozen-garbage problem and Desiccant on a CPython-style
// runtime. Not one of the paper's figures — it substantiates the discussion
// section's claim that "the frozen garbage problem commonly exists in
// language runtimes ... whose memory management mechanism does not promptly
// return the memory to the OS", using arena-managed Python functions.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string name;
  SingleFunctionResult result;
};

std::vector<Row> g_rows;

void RunSuite() {
  for (const WorkloadSpec& w : PythonExtensionSuite()) {
    g_rows.push_back({w.name, RunSingleFunction(w)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterExperiment("ext_cpython/suite", [] { RunSuite(); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"function", "vanilla_mib", "eager_mib", "desiccant_mib", "ideal_mib",
               "max_ratio", "reduction_vs_vanilla"});
  for (const Row& row : g_rows) {
    const SingleFunctionResult& r = row.result;
    table.AddRow({row.name, Table::Fmt(ToMiB(r.vanilla.uss)), Table::Fmt(ToMiB(r.eager.uss)),
                  Table::Fmt(ToMiB(r.desiccant.uss)), Table::Fmt(ToMiB(r.desiccant.ideal_uss)),
                  Table::Fmt(r.max_ratio),
                  Table::Fmt(static_cast<double>(r.vanilla.uss) / r.desiccant.uss)});
  }
  table.Print("Extension: frozen garbage in CPython-style arenas (100 executions)");
  return 0;
}
