// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary registers its experiment as a google-benchmark benchmark
// (Iterations(1): these are macro-experiments, not microbenchmarks), collects
// rows while running, and prints CSV tables after the run — the same
// rows/series the paper's figures report.
#ifndef DESICCANT_BENCH_BENCH_UTIL_H_
#define DESICCANT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/table.h"
#include "src/base/thread_pool.h"
#include "src/core/desiccant_manager.h"
#include "src/faas/platform.h"
#include "src/faas/sharded_cluster.h"
#include "src/faas/single_study.h"
#include "src/trace/azure_trace.h"
#include "src/trace/population.h"
#include "src/workloads/function_spec.h"

namespace desiccant {

// ---------------------------------------------------------------------------
// Single-function experiments (figures 1, 2, 4, 7, 8, 11, 12, 13)

struct SingleFunctionResult {
  ChainSample vanilla;
  ChainSample eager;
  ChainSample desiccant;   // after reclaim
  double avg_ratio = 0.0;  // mean over iterations of vanilla uss / ideal uss
  double max_ratio = 0.0;  // max over iterations
};

// Runs `iterations` chain invocations under all three configurations and
// applies Desiccant's reclaim at the end (memory is assumed scarce, §5.2).
inline SingleFunctionResult RunSingleFunction(const WorkloadSpec& workload,
                                              uint64_t budget = 256 * kMiB,
                                              int iterations = 100,
                                              ImageSharing sharing = ImageSharing::kSharedNode,
                                              bool unmap_libraries = true) {
  StudyConfig vanilla_config;
  vanilla_config.memory_budget = budget;
  vanilla_config.sharing = sharing;
  StudyConfig eager_config = vanilla_config;
  eager_config.mode = StudyMode::kEager;

  ChainStudy vanilla(workload, vanilla_config);
  ChainStudy eager(workload, eager_config);
  ChainStudy desiccant(workload, vanilla_config);

  SingleFunctionResult result;
  for (int i = 0; i < iterations; ++i) {
    result.vanilla = vanilla.Step();
    result.eager = eager.Step();
    desiccant.Step();
    const double ratio = static_cast<double>(result.vanilla.uss) /
                         static_cast<double>(result.vanilla.ideal_uss);
    result.avg_ratio += ratio / iterations;
    result.max_ratio = std::max(result.max_ratio, ratio);
  }
  desiccant.ReclaimAll(ReclaimOptions{}, unmap_libraries);
  result.desiccant = desiccant.Sample();
  // The chain's last carry is still pending consumption; the ideal snapshot
  // accounts for it on both sides, so ratios stay comparable.
  return result;
}

// ---------------------------------------------------------------------------
// Trace replay experiments (figures 9, 10 and the ablations)

struct ReplayConfig {
  MemoryMode mode = MemoryMode::kVanilla;
  double scale_factor = 15.0;
  uint64_t cache_capacity = 1536 * kMiB;
  // Small enough that the vanilla baseline's cold-boot CPU saturates the
  // invoker at the top scale factors, as in the paper's testbed.
  double cpu_cores = 1.6;
  double warmup_scale_factor = 15.0;
  double warmup_seconds = 60.0;
  double measure_seconds = 180.0;
  uint64_t trace_seed = 1234;
  uint64_t platform_seed = 42;
  bool snapstart_restore = false;     // SnapStart-style cold starts
  uint32_t prewarm_per_language = 0;  // OpenWhisk stem cells
  FaultPlan faults;           // all-zero = byte-identical to a faultless build
  DesiccantConfig desiccant;  // used when mode == kDesiccant
  // Node physical-memory pressure (0 = model off, byte-identical replay).
  uint64_t node_budget_mib = 0;
  uint64_t swap_mib = 0;
  // Multi-tier snapshot store (disabled = byte-identical replay; pair with
  // snapstart_restore so cold starts actually walk the tiers).
  SnapshotConfig snapshot;
};

struct ReplayResult {
  PlatformMetrics metrics;
  double cores = 0.0;
  uint64_t desiccant_bytes_released = 0;
  uint64_t desiccant_reclaim_requests = 0;
  // Node pressure counters (all zero when the model is off).
  PressureStats pressure;
  uint64_t node_pressure_activations = 0;
  // Snapshot-store counters (all zero when the store is off).
  SnapshotStats snapshot;
};

// The Table 1 suite with coarsened objects, cached (bench binaries run many
// replays).
inline const std::vector<WorkloadSpec>& CoarseSuite() {
  static const std::vector<WorkloadSpec> kSuite = [] {
    std::vector<WorkloadSpec> suite;
    for (const WorkloadSpec& w : WorkloadSuite()) {
      suite.push_back(CoarsenObjects(w, 4));
    }
    return suite;
  }();
  return kSuite;
}

inline ReplayResult RunReplay(const ReplayConfig& config) {
  PlatformConfig platform_config;
  platform_config.mode = config.mode;
  platform_config.cache_capacity_bytes = config.cache_capacity;
  platform_config.cpu_cores = config.cpu_cores;
  platform_config.seed = config.platform_seed;
  platform_config.snapstart_restore = config.snapstart_restore;
  platform_config.prewarm_per_language = config.prewarm_per_language;
  platform_config.faults = config.faults;
  if (config.node_budget_mib != 0) {
    platform_config.pressure = PhysicalMemoryConfig::ForBytes(config.node_budget_mib * kMiB,
                                                              config.swap_mib * kMiB);
  }
  platform_config.snapshot = config.snapshot;
  Platform platform(platform_config);

  std::unique_ptr<DesiccantManager> manager;
  if (config.mode == MemoryMode::kDesiccant) {
    manager = std::make_unique<DesiccantManager>(&platform, config.desiccant);
  }

  std::vector<const WorkloadSpec*> workloads;
  for (const WorkloadSpec& w : CoarseSuite()) {
    workloads.push_back(&w);
  }
  TraceGenerator generator(config.trace_seed);
  const auto trace_functions = generator.BuildSuiteTrace(workloads);

  const SimTime warmup_end = FromSeconds(config.warmup_seconds);
  const SimTime replay_end = warmup_end + FromSeconds(config.measure_seconds);
  const auto warmup_arrivals =
      generator.Generate(trace_functions, config.warmup_scale_factor, 0, warmup_end);
  const auto measure_arrivals =
      generator.Generate(trace_functions, config.scale_factor, warmup_end, replay_end);
  platform.ReserveEvents(warmup_arrivals.size() + measure_arrivals.size());
  for (const TraceArrival& a : warmup_arrivals) {
    platform.Submit(a.workload, a.time);
  }
  for (const TraceArrival& a : measure_arrivals) {
    platform.Submit(a.workload, a.time);
  }

  platform.RunUntil(warmup_end);
  platform.BeginMeasurement();
  platform.RunUntil(replay_end);

  ReplayResult result;
  result.metrics = platform.FinishMeasurement();
  result.cores = platform_config.cpu_cores;
  if (manager != nullptr) {
    result.desiccant_bytes_released = manager->bytes_released();
    result.desiccant_reclaim_requests = manager->reclaim_requests();
    result.node_pressure_activations = manager->node_pressure_activations();
  }
  if (const PhysicalMemory* node = platform.physical_memory()) {
    result.pressure = node->stats();
  }
  if (const SnapshotStore* store = platform.snapshot_store()) {
    result.snapshot = store->stats();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Sharded (intra-cell parallel) population replay.
//
// The harness ext_scale and the sharded-determinism tests share: replay a
// synthetic population on a ShardedCluster, with per-node Desiccant managers
// when the node mode asks for them, and report both the aggregate metrics and
// the per-node fingerprints so serial and N-thread runs can be compared
// byte-for-byte. The arrival stream is passed in (not generated here) so
// every thread count replays the exact same vector.

struct ShardedReplayResult {
  PlatformMetrics metrics;
  uint64_t aggregate_fingerprint = 0;
  std::vector<uint64_t> node_fingerprints;  // node order
  DesiccantStats desiccant;
  uint64_t frozen_bytes = 0;     // sum over nodes at the end of the window
  double replay_wall_ms = 0.0;   // the Run calls only (setup excluded)
  size_t threads = 1;            // resolved worker count
  size_t racks = 1;              // resolved rack count
  RouterStats router;            // per-level routing / barrier wall-clock
};

inline ShardedReplayResult RunShardedReplay(const SyntheticPopulation& population,
                                            const std::vector<TraceArrival>& arrivals,
                                            SimTime warmup_end, SimTime replay_end,
                                            const ShardedClusterConfig& cluster_config,
                                            const DesiccantConfig& desiccant_config =
                                                DesiccantConfig{}) {
  ShardedCluster cluster(cluster_config);
  std::vector<std::unique_ptr<DesiccantManager>> managers;
  if (cluster_config.node.mode == MemoryMode::kDesiccant) {
    managers.reserve(cluster.node_count());
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      managers.push_back(
          std::make_unique<DesiccantManager>(&cluster.node(i), desiccant_config));
    }
  }
  cluster.ReserveFunctions(population.workloads().size());
  cluster.ReserveEvents(arrivals.size());
  for (const TraceArrival& a : arrivals) {
    cluster.Submit(a.workload, a.time);
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  cluster.RunUntil(warmup_end);
  cluster.BeginMeasurement();
  cluster.RunUntil(replay_end);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  ShardedReplayResult result;
  result.metrics = cluster.AggregateMetrics();
  result.aggregate_fingerprint = result.metrics.Fingerprint();
  result.node_fingerprints = cluster.NodeFingerprints();
  for (const auto& manager : managers) {
    result.desiccant.Accumulate(*manager);
  }
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    result.frozen_bytes += cluster.node(i).FrozenMemoryBytes();
  }
  result.replay_wall_ms = wall_ms;
  result.threads = cluster.threads();
  result.racks = cluster.rack_count();
  result.router = cluster.router_stats();
  return result;
}

// ---------------------------------------------------------------------------
// Bench registration helper: a whole experiment as one benchmark iteration.

inline void RegisterExperiment(const std::string& name, std::function<void()> body) {
  benchmark::RegisterBenchmark(name.c_str(), [body](benchmark::State& state) {
    for (auto _ : state) {
      body();
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

// ---------------------------------------------------------------------------
// Parallel experiment grid.
//
// A figure bench is a grid of independent replay cells (scale factor x mode,
// heap size x policy, ...). Each cell owns a private Platform/SimContext, so
// cells can run on worker threads concurrently as long as every cell writes
// its result into a pre-sized slot it alone owns. Collation and table
// printing happen after the grid completes, on the main thread, in a fixed
// loop order — so the emitted tables are byte-identical to a serial run.

struct ExperimentCell {
  std::string name;             // benchmark name, e.g. "fig09/sf:15/vanilla"
  std::function<void()> body;   // runs the cell; must only touch its own slot
};

// Host core count as the benchmark harness sees it (always >= 1).
inline size_t HostCores() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Worker count for RunExperimentGrid: DESICCANT_REPLAY_THREADS if set (>= 1;
// 1 means run serially inline), otherwise the hardware concurrency. The env
// value is clamped to the host's core count: replay cells are pure CPU, so
// oversubscription buys nothing but scheduler churn — a forced 4-thread run
// on a 1-core CI host measured 0.85x of serial (BENCH_replay.json, PR 5).
inline size_t ReplayGridThreads() {
  const size_t cores = HostCores();
  if (const char* env = std::getenv("DESICCANT_REPLAY_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return std::min(static_cast<size_t>(parsed), cores);
    }
  }
  return cores;
}

struct GridReport {
  size_t threads = 1;
  std::vector<double> cell_wall_ms;  // parallel to the cells vector
  double total_wall_ms = 0.0;
};

// Runs every cell (serially inline when threads <= 1, else on a thread pool)
// and registers one manual-time benchmark per cell carrying its measured
// wall-clock, so `--benchmark_out` JSON keeps one entry per cell regardless
// of how the grid was executed.
inline GridReport RunExperimentGrid(const std::vector<ExperimentCell>& cells,
                                    size_t threads = 0,
                                    bool register_benchmarks = true) {
  GridReport report;
  report.threads = threads == 0 ? ReplayGridThreads() : threads;
  report.cell_wall_ms.resize(cells.size(), 0.0);

  using Clock = std::chrono::steady_clock;
  const auto grid_start = Clock::now();
  auto run_cell = [&cells, &report](size_t index) {
    const auto start = Clock::now();
    cells[index].body();
    report.cell_wall_ms[index] =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  };
  if (report.threads <= 1) {
    for (size_t i = 0; i < cells.size(); ++i) {
      run_cell(i);
    }
  } else {
    ThreadPool pool(report.threads);
    for (size_t i = 0; i < cells.size(); ++i) {
      pool.Submit([&run_cell, i] { run_cell(i); });
    }
    pool.Wait();
  }
  report.total_wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - grid_start).count();

  if (register_benchmarks) {
    // One meta entry carrying the *effective* worker count (post-clamp) and
    // the host's core count, so the bench JSON records what actually ran —
    // a requested thread count means nothing on a smaller host.
    static bool meta_registered = false;
    if (!meta_registered) {
      meta_registered = true;
      const auto effective = static_cast<double>(report.threads);
      const auto cores = static_cast<double>(HostCores());
      benchmark::RegisterBenchmark("replay_grid/meta",
                                   [effective, cores](benchmark::State& state) {
                                     for (auto _ : state) {
                                     }
                                     state.counters["threads"] = effective;
                                     state.counters["host_cores"] = cores;
                                   })
          ->Iterations(1);
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      const double ms = report.cell_wall_ms[i];
      benchmark::RegisterBenchmark(cells[i].name.c_str(),
                                   [ms](benchmark::State& state) {
                                     for (auto _ : state) {
                                       state.SetIterationTime(ms / 1000.0);
                                     }
                                   })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  return report;
}

// Collation guard: every bench that gathers grid slots into per-figure tables
// must check the slot was actually filled instead of dereferencing a null
// entry (the old fig09/fig10 collation crashed with a bare segfault when a
// cell was missing, e.g. after a filtered run).
template <typename T>
inline const T& CheckedCell(const T* cell, const std::string& what) {
  if (cell == nullptr) {
    std::fprintf(stderr, "missing experiment grid cell: %s\n", what.c_str());
    std::abort();
  }
  return *cell;
}

}  // namespace desiccant

#endif  // DESICCANT_BENCH_BENCH_UTIL_H_
