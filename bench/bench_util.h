// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary registers its experiment as a google-benchmark benchmark
// (Iterations(1): these are macro-experiments, not microbenchmarks), collects
// rows while running, and prints CSV tables after the run — the same
// rows/series the paper's figures report.
#ifndef DESICCANT_BENCH_BENCH_UTIL_H_
#define DESICCANT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/table.h"
#include "src/core/desiccant_manager.h"
#include "src/faas/platform.h"
#include "src/faas/single_study.h"
#include "src/trace/azure_trace.h"
#include "src/workloads/function_spec.h"

namespace desiccant {

// ---------------------------------------------------------------------------
// Single-function experiments (figures 1, 2, 4, 7, 8, 11, 12, 13)

struct SingleFunctionResult {
  ChainSample vanilla;
  ChainSample eager;
  ChainSample desiccant;   // after reclaim
  double avg_ratio = 0.0;  // mean over iterations of vanilla uss / ideal uss
  double max_ratio = 0.0;  // max over iterations
};

// Runs `iterations` chain invocations under all three configurations and
// applies Desiccant's reclaim at the end (memory is assumed scarce, §5.2).
inline SingleFunctionResult RunSingleFunction(const WorkloadSpec& workload,
                                              uint64_t budget = 256 * kMiB,
                                              int iterations = 100,
                                              ImageSharing sharing = ImageSharing::kSharedNode,
                                              bool unmap_libraries = true) {
  StudyConfig vanilla_config;
  vanilla_config.memory_budget = budget;
  vanilla_config.sharing = sharing;
  StudyConfig eager_config = vanilla_config;
  eager_config.mode = StudyMode::kEager;

  ChainStudy vanilla(workload, vanilla_config);
  ChainStudy eager(workload, eager_config);
  ChainStudy desiccant(workload, vanilla_config);

  SingleFunctionResult result;
  for (int i = 0; i < iterations; ++i) {
    result.vanilla = vanilla.Step();
    result.eager = eager.Step();
    desiccant.Step();
    const double ratio = static_cast<double>(result.vanilla.uss) /
                         static_cast<double>(result.vanilla.ideal_uss);
    result.avg_ratio += ratio / iterations;
    result.max_ratio = std::max(result.max_ratio, ratio);
  }
  desiccant.ReclaimAll(ReclaimOptions{}, unmap_libraries);
  result.desiccant = desiccant.Sample();
  // The chain's last carry is still pending consumption; the ideal snapshot
  // accounts for it on both sides, so ratios stay comparable.
  return result;
}

// ---------------------------------------------------------------------------
// Trace replay experiments (figures 9, 10 and the ablations)

struct ReplayConfig {
  MemoryMode mode = MemoryMode::kVanilla;
  double scale_factor = 15.0;
  uint64_t cache_capacity = 1536 * kMiB;
  // Small enough that the vanilla baseline's cold-boot CPU saturates the
  // invoker at the top scale factors, as in the paper's testbed.
  double cpu_cores = 1.6;
  double warmup_scale_factor = 15.0;
  double warmup_seconds = 60.0;
  double measure_seconds = 180.0;
  uint64_t trace_seed = 1234;
  uint64_t platform_seed = 42;
  bool snapstart_restore = false;     // SnapStart-style cold starts
  uint32_t prewarm_per_language = 0;  // OpenWhisk stem cells
  FaultPlan faults;           // all-zero = byte-identical to a faultless build
  DesiccantConfig desiccant;  // used when mode == kDesiccant
};

struct ReplayResult {
  PlatformMetrics metrics;
  double cores = 0.0;
  uint64_t desiccant_bytes_released = 0;
  uint64_t desiccant_reclaim_requests = 0;
};

// The Table 1 suite with coarsened objects, cached (bench binaries run many
// replays).
inline const std::vector<WorkloadSpec>& CoarseSuite() {
  static const std::vector<WorkloadSpec> kSuite = [] {
    std::vector<WorkloadSpec> suite;
    for (const WorkloadSpec& w : WorkloadSuite()) {
      suite.push_back(CoarsenObjects(w, 4));
    }
    return suite;
  }();
  return kSuite;
}

inline ReplayResult RunReplay(const ReplayConfig& config) {
  PlatformConfig platform_config;
  platform_config.mode = config.mode;
  platform_config.cache_capacity_bytes = config.cache_capacity;
  platform_config.cpu_cores = config.cpu_cores;
  platform_config.seed = config.platform_seed;
  platform_config.snapstart_restore = config.snapstart_restore;
  platform_config.prewarm_per_language = config.prewarm_per_language;
  platform_config.faults = config.faults;
  Platform platform(platform_config);

  std::unique_ptr<DesiccantManager> manager;
  if (config.mode == MemoryMode::kDesiccant) {
    manager = std::make_unique<DesiccantManager>(&platform, config.desiccant);
  }

  std::vector<const WorkloadSpec*> workloads;
  for (const WorkloadSpec& w : CoarseSuite()) {
    workloads.push_back(&w);
  }
  TraceGenerator generator(config.trace_seed);
  const auto trace_functions = generator.BuildSuiteTrace(workloads);

  const SimTime warmup_end = FromSeconds(config.warmup_seconds);
  const SimTime replay_end = warmup_end + FromSeconds(config.measure_seconds);
  const auto warmup_arrivals =
      generator.Generate(trace_functions, config.warmup_scale_factor, 0, warmup_end);
  const auto measure_arrivals =
      generator.Generate(trace_functions, config.scale_factor, warmup_end, replay_end);
  platform.ReserveEvents(warmup_arrivals.size() + measure_arrivals.size());
  for (const TraceArrival& a : warmup_arrivals) {
    platform.Submit(a.workload, a.time);
  }
  for (const TraceArrival& a : measure_arrivals) {
    platform.Submit(a.workload, a.time);
  }

  platform.RunUntil(warmup_end);
  platform.BeginMeasurement();
  platform.RunUntil(replay_end);

  ReplayResult result;
  result.metrics = platform.FinishMeasurement();
  result.cores = platform_config.cpu_cores;
  if (manager != nullptr) {
    result.desiccant_bytes_released = manager->bytes_released();
    result.desiccant_reclaim_requests = manager->reclaim_requests();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Bench registration helper: a whole experiment as one benchmark iteration.

inline void RegisterExperiment(const std::string& name, std::function<void()> body) {
  benchmark::RegisterBenchmark(name.c_str(), [body](benchmark::State& state) {
    for (auto _ : state) {
      body();
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

}  // namespace desiccant

#endif  // DESICCANT_BENCH_BENCH_UTIL_H_
