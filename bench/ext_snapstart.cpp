// Extension (§2.1, §6.1): Desiccant vs alternative cold-start mitigations —
// SnapStart-style snapshot restore and OpenWhisk-style prewarmed stem cells.
// Both attack the *cost* of a cold start; Desiccant attacks its *frequency*
// by caching more frozen instances in the same memory. The approaches
// compose: the last row runs Desiccant with a prewarm pool.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string setup;
  ReplayResult result;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, const std::string& setup, MemoryMode mode, bool snapstart,
         uint32_t prewarm) {
  ReplayConfig config;
  config.mode = mode;
  config.scale_factor = 20.0;
  config.snapstart_restore = snapstart;
  config.prewarm_per_language = prewarm;
  g_rows[slot] = {setup, RunReplay(config)};
}

struct Setup {
  const char* bench_name;
  const char* setup;
  MemoryMode mode;
  bool snapstart;
  uint32_t prewarm;
};

constexpr Setup kSetups[] = {
    {"ext_snapstart/vanilla", "vanilla", MemoryMode::kVanilla, false, 0},
    {"ext_snapstart/snapstart", "vanilla+snapstart", MemoryMode::kVanilla, true, 0},
    {"ext_snapstart/prewarm", "vanilla+prewarm2", MemoryMode::kVanilla, false, 2},
    {"ext_snapstart/swap", "os-swapping", MemoryMode::kSwap, false, 0},
    {"ext_snapstart/desiccant", "desiccant", MemoryMode::kDesiccant, false, 0},
    {"ext_snapstart/desiccant+prewarm", "desiccant+prewarm2", MemoryMode::kDesiccant, false,
     2},
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const Setup& setup : kSetups) {
    const size_t slot = cells.size();
    cells.push_back({setup.bench_name, [slot, setup] {
                       Run(slot, setup.setup, setup.mode, setup.snapstart, setup.prewarm);
                     }});
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"setup", "cold_boots_per_s", "prewarm_adoptions", "p50_ms", "p99_ms",
               "throughput_rps"});
  for (const Row& row : g_rows) {
    const PlatformMetrics& m = row.result.metrics;
    table.AddRow({row.setup, Table::Fmt(m.ColdBootsPerSecond(), 3),
                  std::to_string(m.prewarm_adoptions), Table::Fmt(m.latency_ms.Percentile(50)),
                  Table::Fmt(m.latency_ms.Percentile(99)), Table::Fmt(m.ThroughputRps())});
  }
  table.Print("Extension: cold-start mitigations (trace replay, scale factor 20)");
  return 0;
}
