// Extension (§2.1, §6.1): Desiccant vs alternative cold-start mitigations —
// SnapStart-style snapshot restore and OpenWhisk-style prewarmed stem cells.
// Both attack the *cost* of a cold start; Desiccant attacks its *frequency*
// by caching more frozen instances in the same memory. The approaches
// compose: the last row runs Desiccant with a prewarm pool.
//
// Second table: the multi-tier snapshot store (src/snapshot/). Cold boots vs
// the legacy flat restore vs tiered restores in lazy (demand-fault) and REAP
// (working-set prefetch) mode, across two hierarchies (three-tier and
// remote-only), plus a Desiccant composition cell that reports how much of
// the recorded working set reclamation leaves resident, and a fault cell
// that loses the node-local tier mid-run. Every cell replays twice and
// reports `det` — whether the two runs' metric fingerprints matched
// byte-for-byte.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string setup;
  ReplayResult result;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, const std::string& setup, MemoryMode mode, bool snapstart,
         uint32_t prewarm) {
  ReplayConfig config;
  config.mode = mode;
  config.scale_factor = 20.0;
  config.snapstart_restore = snapstart;
  config.prewarm_per_language = prewarm;
  g_rows[slot] = {setup, RunReplay(config)};
}

struct Setup {
  const char* bench_name;
  const char* setup;
  MemoryMode mode;
  bool snapstart;
  uint32_t prewarm;
};

constexpr Setup kSetups[] = {
    {"ext_snapstart/vanilla", "vanilla", MemoryMode::kVanilla, false, 0},
    {"ext_snapstart/snapstart", "vanilla+snapstart", MemoryMode::kVanilla, true, 0},
    {"ext_snapstart/prewarm", "vanilla+prewarm2", MemoryMode::kVanilla, false, 2},
    {"ext_snapstart/swap", "os-swapping", MemoryMode::kSwap, false, 0},
    {"ext_snapstart/desiccant", "desiccant", MemoryMode::kDesiccant, false, 0},
    {"ext_snapstart/desiccant+prewarm", "desiccant+prewarm2", MemoryMode::kDesiccant, false,
     2},
};

// ---------------------------------------------------------------------------
// Tiered-snapshot grid.

enum class Hierarchy { kNone, kThreeTier, kRemoteOnly };

struct TierSetup {
  const char* name;           // row label and benchmark suffix
  MemoryMode mode;
  bool snapstart;             // restore path enabled at all
  Hierarchy hierarchy;        // kNone + snapstart = legacy flat restore
  bool reap;                  // prefetch the recorded working set
  bool faults;                // fetch failures + corruption + local-tier loss
};

constexpr TierSetup kTierSetups[] = {
    {"cold-boot", MemoryMode::kVanilla, false, Hierarchy::kNone, false, false},
    {"legacy-restore", MemoryMode::kVanilla, true, Hierarchy::kNone, false, false},
    {"lazy+3tier", MemoryMode::kVanilla, true, Hierarchy::kThreeTier, false, false},
    {"reap+3tier", MemoryMode::kVanilla, true, Hierarchy::kThreeTier, true, false},
    {"lazy+remote", MemoryMode::kVanilla, true, Hierarchy::kRemoteOnly, false, false},
    {"reap+remote", MemoryMode::kVanilla, true, Hierarchy::kRemoteOnly, true, false},
    {"reap+3tier+desiccant", MemoryMode::kDesiccant, true, Hierarchy::kThreeTier, true,
     false},
    {"reap+3tier+faults", MemoryMode::kVanilla, true, Hierarchy::kThreeTier, true, true},
};

struct TierRow {
  std::string setup;
  ReplayResult result;
  bool det = false;  // two replays produced identical metric fingerprints
};

std::vector<TierRow> g_tier_rows;

ReplayConfig TierConfig(const TierSetup& setup) {
  ReplayConfig config;
  config.mode = setup.mode;
  config.scale_factor = 20.0;
  config.snapstart_restore = setup.snapstart;
  switch (setup.hierarchy) {
    case Hierarchy::kNone:
      break;
    case Hierarchy::kThreeTier:
      config.snapshot = SnapshotConfig::ThreeTier();
      break;
    case Hierarchy::kRemoteOnly:
      config.snapshot = SnapshotConfig::RemoteOnly();
      break;
  }
  config.snapshot.reap_prefetch = setup.reap;
  if (setup.faults) {
    config.faults.snapshot_fetch_failure_prob = 0.05;
    config.faults.snapshot_corruption_prob = 0.01;
    // Mid-measurement (warmup 60 s + 180 s window): restores afterwards must
    // degrade through the surviving durable tiers, not die.
    config.faults.snapshot_local_tier_fail_at = FromSeconds(150);
  }
  return config;
}

void RunTier(size_t slot, const TierSetup& setup) {
  const ReplayConfig config = TierConfig(setup);
  ReplayResult first = RunReplay(config);
  const ReplayResult second = RunReplay(config);
  const bool det = first.metrics.Fingerprint() == second.metrics.Fingerprint();
  g_tier_rows[slot] = {setup.name, std::move(first), det};
}

// ---------------------------------------------------------------------------
// Failover grid: node crashes on a 4-node cluster, private snapshot stores vs
// the cell-shared fabric. With private stores a crash strands the victim's
// images: its functions fail over to siblings that have never captured them
// and fall back to full cold boots. With the fabric, tiers >= 1 are cluster
// scope — the sibling fetches the shared copy — so fallback_boots collapse.
// The degraded cells overlay a tier brown-out and a rack partition on top of
// the crash plan, and the delta cell runs Desiccant so refresh traffic ships
// deltas instead of full images.

struct FailoverSetup {
  const char* name;
  bool fabric;
  bool brownout;   // tier-1 brown-out window inside the measurement
  bool partition;  // rack 0 partitioned from tier 1 inside the measurement
  bool delta;      // Desiccant mode + delta refresh (exercises Refresh)
};

constexpr FailoverSetup kFailoverSetups[] = {
    {"private+crash", false, false, false, false},
    {"shared+crash", true, false, false, false},
    {"shared+crash+brownout", true, true, false, false},
    {"shared+crash+partition", true, false, true, false},
    {"shared+crash+delta", true, false, false, true},
};

struct FailoverRow {
  std::string setup;
  PlatformMetrics metrics;
  SnapshotStats snapshot;
  bool det = false;
};

std::vector<FailoverRow> g_failover_rows;

ClusterConfig FailoverConfig(const FailoverSetup& setup) {
  ClusterConfig config;
  config.node_count = 4;
  config.routing = RoutingPolicy::kAffinity;
  config.node.mode = setup.delta ? MemoryMode::kDesiccant : MemoryMode::kVanilla;
  config.node.cache_capacity_bytes = 384 * kMiB;  // 1.5 GiB cluster-wide
  config.node.cpu_cores = 0.8;                    // 3.2 cores cluster-wide
  config.node.snapstart_restore = true;
  config.node.snapshot = SnapshotConfig::ThreeTier();
  config.node.snapshot.reap_prefetch = true;
  if (setup.fabric) {
    config.node.snapshot.fabric.enabled = true;
    config.node.snapshot.fabric.rack_count = 2;
    config.node.snapshot.fabric.replication_factor = 2;
  }
  if (setup.delta) {
    config.node.snapshot.delta_refresh = true;
  }
  // Repeated invoker crashes across the whole run: every node loses its
  // private tier-0 cache (and, without the fabric, strands what it flushed).
  config.node.faults.node_crash_mtbf_seconds = 30.0;
  config.node.faults.node_crash_horizon = FromSeconds(200);
  config.node.faults.node_restart_delay = 2 * kSecond;
  if (setup.brownout) {
    config.node.faults.fabric_faults.push_back(
        FabricFault{FromSeconds(90), FromSeconds(60), 1, FabricFaultKind::kBrownout, 8.0, 0});
  }
  if (setup.partition) {
    config.node.faults.fabric_faults.push_back(FabricFault{
        FromSeconds(90), FromSeconds(40), 1, FabricFaultKind::kRackPartition, 1.0, 0});
  }
  return config;
}

struct FailoverOutcome {
  PlatformMetrics metrics;
  SnapshotStats snapshot;
};

FailoverOutcome RunFailoverOnce(const FailoverSetup& setup) {
  const ClusterConfig config = FailoverConfig(setup);
  Cluster cluster(config);
  std::vector<std::unique_ptr<DesiccantManager>> managers;
  if (config.node.mode == MemoryMode::kDesiccant) {
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      managers.push_back(
          std::make_unique<DesiccantManager>(&cluster.node(i), DesiccantConfig{}));
    }
  }
  std::vector<const WorkloadSpec*> workloads;
  for (const WorkloadSpec& w : CoarseSuite()) {
    workloads.push_back(&w);
  }
  TraceGenerator generator(1234);
  const auto trace_functions = generator.BuildSuiteTrace(workloads);
  const SimTime warmup_end = FromSeconds(60);
  const SimTime replay_end = warmup_end + FromSeconds(180);
  for (const TraceArrival& a : generator.Generate(trace_functions, 15.0, 0, warmup_end)) {
    cluster.Submit(a.workload, a.time);
  }
  for (const TraceArrival& a :
       generator.Generate(trace_functions, 20.0, warmup_end, replay_end)) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.RunUntil(warmup_end);
  cluster.BeginMeasurement();
  cluster.RunUntil(replay_end);
  FailoverOutcome outcome;
  outcome.metrics = cluster.AggregateMetrics();
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    if (const SnapshotStore* store = cluster.node(i).snapshot_store()) {
      outcome.snapshot.Accumulate(store->stats());
    }
  }
  return outcome;
}

void RunFailover(size_t slot, const FailoverSetup& setup) {
  FailoverOutcome first = RunFailoverOnce(setup);
  const FailoverOutcome second = RunFailoverOnce(setup);
  const bool det = first.metrics.Fingerprint() == second.metrics.Fingerprint();
  g_failover_rows[slot] = {setup.name, std::move(first.metrics), first.snapshot, det};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const Setup& setup : kSetups) {
    const size_t slot = cells.size();
    cells.push_back({setup.bench_name, [slot, setup] {
                       Run(slot, setup.setup, setup.mode, setup.snapstart, setup.prewarm);
                     }});
  }
  g_rows.resize(cells.size());

  std::vector<ExperimentCell> tier_cells;
  for (const TierSetup& setup : kTierSetups) {
    const size_t slot = tier_cells.size();
    tier_cells.push_back({std::string("ext_snapstart_tiers/") + setup.name,
                          [slot, setup] { RunTier(slot, setup); }});
  }
  g_tier_rows.resize(tier_cells.size());

  std::vector<ExperimentCell> failover_cells;
  for (const FailoverSetup& setup : kFailoverSetups) {
    const size_t slot = failover_cells.size();
    failover_cells.push_back({std::string("ext_snapstart_failover/") + setup.name,
                              [slot, setup] { RunFailover(slot, setup); }});
  }
  g_failover_rows.resize(failover_cells.size());

  std::vector<ExperimentCell> all_cells = cells;
  all_cells.insert(all_cells.end(), tier_cells.begin(), tier_cells.end());
  all_cells.insert(all_cells.end(), failover_cells.begin(), failover_cells.end());
  RunExperimentGrid(all_cells);

  for (const TierRow& row : g_tier_rows) {
    const PlatformMetrics& m = row.result.metrics;
    const SnapshotStats& s = row.result.snapshot;
    const std::string name = "ext_snapstart_tiers/" + row.setup;
    const bool det = row.det;
    const double p50 = m.latency_ms.Percentile(50);
    const double p99 = m.latency_ms.Percentile(99);
    const double goodput = m.GoodputRps();
    const double restores = static_cast<double>(m.snapshot_restores);
    const double fallbacks = static_cast<double>(m.snapshot_fallback_boots);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [=](benchmark::State& state) {
                                   for (auto _ : state) {
                                   }
                                   state.counters["det"] = det ? 1.0 : 0.0;
                                   state.counters["p50_ms"] = p50;
                                   state.counters["p99_ms"] = p99;
                                   state.counters["goodput_rps"] = goodput;
                                   state.counters["restores"] = restores;
                                   state.counters["fallbacks"] = fallbacks;
                                 })
        ->Iterations(1);
    (void)s;
  }

  for (const FailoverRow& row : g_failover_rows) {
    const PlatformMetrics& m = row.metrics;
    const SnapshotStats& s = row.snapshot;
    const std::string name = "ext_snapstart_failover/" + row.setup;
    const bool det = row.det;
    const double p50 = m.latency_ms.Percentile(50);
    const double p99 = m.latency_ms.Percentile(99);
    const double goodput = m.GoodputRps();
    const double restores = static_cast<double>(m.snapshot_restores);
    const double fallbacks = static_cast<double>(m.snapshot_fallback_boots);
    const double delta_shipped_mib =
        static_cast<double>(s.delta_bytes_shipped) / static_cast<double>(kMiB);
    const double delta_saved_mib =
        static_cast<double>(s.delta_bytes_saved) / static_cast<double>(kMiB);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [=](benchmark::State& state) {
                                   for (auto _ : state) {
                                   }
                                   state.counters["det"] = det ? 1.0 : 0.0;
                                   state.counters["p50_ms"] = p50;
                                   state.counters["p99_ms"] = p99;
                                   state.counters["goodput_rps"] = goodput;
                                   state.counters["restores"] = restores;
                                   state.counters["fallbacks"] = fallbacks;
                                   state.counters["delta_shipped_mib"] = delta_shipped_mib;
                                   state.counters["delta_saved_mib"] = delta_saved_mib;
                                 })
        ->Iterations(1);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"setup", "cold_boots_per_s", "prewarm_adoptions", "p50_ms", "p99_ms",
               "throughput_rps"});
  for (const Row& row : g_rows) {
    const PlatformMetrics& m = row.result.metrics;
    table.AddRow({row.setup, Table::Fmt(m.ColdBootsPerSecond(), 3),
                  std::to_string(m.prewarm_adoptions), Table::Fmt(m.latency_ms.Percentile(50)),
                  Table::Fmt(m.latency_ms.Percentile(99)), Table::Fmt(m.ThroughputRps())});
  }
  table.Print("Extension: cold-start mitigations (trace replay, scale factor 20)");

  Table tiers({"setup", "p50_ms", "p99_ms", "goodput_rps", "cold_boots", "restores",
               "fallbacks", "restore_fail", "fetch_fail", "corrupt", "ws_coverage", "det"});
  for (const TierRow& row : g_tier_rows) {
    const PlatformMetrics& m = row.result.metrics;
    const SnapshotStats& s = row.result.snapshot;
    // How much of the recorded working set the last capture/refresh left
    // resident — the Desiccant cell shows whether reclamation evicts the
    // pages a REAP restore is about to prefetch.
    const double ws_coverage =
        s.ws_pages_recorded == 0
            ? 0.0
            : static_cast<double>(s.ws_pages_resident) /
                  static_cast<double>(s.ws_pages_recorded);
    tiers.AddRow({row.setup, Table::Fmt(m.latency_ms.Percentile(50)),
                  Table::Fmt(m.latency_ms.Percentile(99)), Table::Fmt(m.GoodputRps()),
                  std::to_string(m.cold_boots), std::to_string(m.snapshot_restores),
                  std::to_string(m.snapshot_fallback_boots),
                  std::to_string(m.restore_failures), std::to_string(s.fetch_failures),
                  std::to_string(s.corruptions), Table::Fmt(ws_coverage, 3),
                  row.det ? "yes" : "NO"});
  }
  tiers.Print(
      "Extension: multi-tier snapshot restore (cold vs lazy vs REAP, two hierarchies)");

  Table failover({"setup", "p50_ms", "p99_ms", "goodput_rps", "restores", "fallbacks",
                  "fetch_fail", "delta_shipped_mib", "delta_saved_mib", "det"});
  for (const FailoverRow& row : g_failover_rows) {
    const PlatformMetrics& m = row.metrics;
    const SnapshotStats& s = row.snapshot;
    failover.AddRow({row.setup, Table::Fmt(m.latency_ms.Percentile(50)),
                     Table::Fmt(m.latency_ms.Percentile(99)), Table::Fmt(m.GoodputRps()),
                     std::to_string(m.snapshot_restores),
                     std::to_string(m.snapshot_fallback_boots),
                     std::to_string(s.fetch_failures),
                     Table::Fmt(static_cast<double>(s.delta_bytes_shipped) /
                                static_cast<double>(kMiB)),
                     Table::Fmt(static_cast<double>(s.delta_bytes_saved) /
                                static_cast<double>(kMiB)),
                     row.det ? "yes" : "NO"});
  }
  failover.Print(
      "Extension: crash failover — private snapshot stores vs the cell-shared fabric "
      "(4 nodes, crash plan, SF 20)");
  return 0;
}
