// Extension (§2.1, §6.1): Desiccant vs alternative cold-start mitigations —
// SnapStart-style snapshot restore and OpenWhisk-style prewarmed stem cells.
// Both attack the *cost* of a cold start; Desiccant attacks its *frequency*
// by caching more frozen instances in the same memory. The approaches
// compose: the last row runs Desiccant with a prewarm pool.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string setup;
  ReplayResult result;
};

std::vector<Row> g_rows;

void Run(const std::string& setup, MemoryMode mode, bool snapstart, uint32_t prewarm) {
  ReplayConfig config;
  config.mode = mode;
  config.scale_factor = 20.0;
  config.snapstart_restore = snapstart;
  config.prewarm_per_language = prewarm;
  g_rows.push_back({setup, RunReplay(config)});
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterExperiment("ext_snapstart/vanilla",
                     [] { Run("vanilla", MemoryMode::kVanilla, false, 0); });
  RegisterExperiment("ext_snapstart/snapstart",
                     [] { Run("vanilla+snapstart", MemoryMode::kVanilla, true, 0); });
  RegisterExperiment("ext_snapstart/prewarm",
                     [] { Run("vanilla+prewarm2", MemoryMode::kVanilla, false, 2); });
  RegisterExperiment("ext_snapstart/swap",
                     [] { Run("os-swapping", MemoryMode::kSwap, false, 0); });
  RegisterExperiment("ext_snapstart/desiccant",
                     [] { Run("desiccant", MemoryMode::kDesiccant, false, 0); });
  RegisterExperiment("ext_snapstart/desiccant+prewarm",
                     [] { Run("desiccant+prewarm2", MemoryMode::kDesiccant, false, 2); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"setup", "cold_boots_per_s", "prewarm_adoptions", "p50_ms", "p99_ms",
               "throughput_rps"});
  for (const Row& row : g_rows) {
    const PlatformMetrics& m = row.result.metrics;
    table.AddRow({row.setup, Table::Fmt(m.ColdBootsPerSecond(), 3),
                  std::to_string(m.prewarm_adoptions), Table::Fmt(m.latency_ms.Percentile(50)),
                  Table::Fmt(m.latency_ms.Percentile(99)), Table::Fmt(m.ThroughputRps())});
  }
  table.Print("Extension: cold-start mitigations (trace replay, scale factor 20)");
  return 0;
}
