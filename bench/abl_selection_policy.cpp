// Ablation: instance selection by estimated reclamation throughput (§4.5.2)
// vs FIFO / largest-heap / arbitrary ordering, averaged over five platform
// seeds with a single-candidate batch.
//
// Finding: on this trace the strategies land within ~10% of each other —
// every frozen instance carries substantial reclaimable garbage, so *which*
// one goes first hardly changes the cache's steady state. The throughput
// ranking is the safe default (it never loses, and §4.5.2's profile machinery
// costs almost nothing); its value concentrates where reclamation capacity is
// scarce relative to the candidate stream.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr uint64_t kSeeds[] = {42, 43, 44, 45, 46};

struct Row {
  std::string policy;
  double cold_boots_per_s = 0.0;
  double evictions = 0.0;
  double reclaims = 0.0;
  double bytes_released_mib = 0.0;
  double reclaim_cpu_core_s = 0.0;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, const std::string& name, SelectionStrategy strategy) {
  Row row;
  row.policy = name;
  for (const uint64_t seed : kSeeds) {
    ReplayConfig config;
    config.mode = MemoryMode::kDesiccant;
    config.scale_factor = 20.0;
    config.platform_seed = seed;
    config.desiccant.strategy = strategy;
    // A single-candidate batch plus a starved reclaimer make the ordering
    // matter: only the top-ranked instance gets reclaimed per tick.
    config.desiccant.selection.max_batch = 1;
    config.desiccant.selection.freeze_timeout = 3 * kSecond;
    const ReplayResult result = RunReplay(config);
    const double n = std::size(kSeeds);
    row.cold_boots_per_s += result.metrics.ColdBootsPerSecond() / n;
    row.evictions += static_cast<double>(result.metrics.evictions) / n;
    row.reclaims += static_cast<double>(result.metrics.reclaims) / n;
    row.bytes_released_mib += ToMiB(result.desiccant_bytes_released) / n;
    row.reclaim_cpu_core_s += result.metrics.reclaim_cpu_core_s / n;
  }
  g_rows[slot] = row;
}

struct Policy {
  const char* bench_name;
  const char* policy;
  SelectionStrategy strategy;
};

constexpr Policy kPolicies[] = {
    {"abl_selection/throughput", "throughput", SelectionStrategy::kThroughput},
    {"abl_selection/fifo", "fifo", SelectionStrategy::kFifo},
    {"abl_selection/largest-heap", "largest-heap", SelectionStrategy::kLargestHeap},
    {"abl_selection/arbitrary", "arbitrary", SelectionStrategy::kRandomish},
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const Policy& policy : kPolicies) {
    const size_t slot = cells.size();
    cells.push_back({policy.bench_name,
                     [slot, policy] { Run(slot, policy.policy, policy.strategy); }});
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"policy", "cold_boots_per_s", "evictions", "reclaims",
               "bytes_released_mib", "reclaim_cpu_core_s"});
  for (const Row& row : g_rows) {
    table.AddRow({row.policy, Table::Fmt(row.cold_boots_per_s, 3),
                  Table::Fmt(row.evictions, 0), Table::Fmt(row.reclaims, 0),
                  Table::Fmt(row.bytes_released_mib), Table::Fmt(row.reclaim_cpu_core_s)});
  }
  table.Print(
      "Ablation: selection policy (trace replay, scale factor 20, batch 1, 5-seed mean)");
  std::printf("Note: strategies land within ~10%% of each other here — every frozen\n"
              "instance has substantial reclaimable garbage, so ordering is secondary;\n"
              "the throughput ranking is the safe default.\n");
  return 0;
}
