// Microbenchmarks of the OS page-state model in src/os (real wall-clock
// timing). These are the hot paths of every simulated GC cycle, freeze,
// reclaim pass, and platform sample tick: Touch/Release over large ranges,
// Usage()/Smaps() queries, resident-page probes, and swap-out scans. The
// numbers are tracked across PRs via scripts/bench_os.sh -> BENCH_os.json.
#include <benchmark/benchmark.h>

#include "src/base/units.h"
#include "src/os/shared_file_registry.h"
#include "src/os/virtual_memory.h"

namespace {

using namespace desiccant;

constexpr uint64_t kHeapBytes = 256 * kMiB;

// Commit + decommit of a 256 MiB heap: the cost of faulting a large
// allocation in and giving it back (GC release of free pages).
void BM_TouchRelease256MiB(benchmark::State& state) {
  VirtualAddressSpace vas(nullptr);
  const RegionId r = vas.MapAnonymous("heap", kHeapBytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vas.Touch(r, 0, kHeapBytes, /*write=*/true));
    benchmark::DoNotOptimize(vas.Release(r, 0, kHeapBytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kHeapBytes));
}
BENCHMARK(BM_TouchRelease256MiB);

// Re-touch of already-resident pages: the no-transition fast path taken by
// every allocation into warm heap pages.
void BM_TouchResident256MiB(benchmark::State& state) {
  VirtualAddressSpace vas(nullptr);
  const RegionId r = vas.MapAnonymous("heap", kHeapBytes);
  vas.Touch(r, 0, kHeapBytes, /*write=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vas.Touch(r, 0, kHeapBytes, /*write=*/true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kHeapBytes));
}
BENCHMARK(BM_TouchResident256MiB);

// A realistic instance-shaped address space: a big heap region plus many
// chunked-space regions plus a shared runtime image, partially resident.
struct InstanceShapedSpace {
  SharedFileRegistry registry;
  VirtualAddressSpace vas{&registry};
  VirtualAddressSpace sharer{&registry};
  RegionId heap = kInvalidRegionId;

  InstanceShapedSpace() {
    heap = vas.MapAnonymous("java heap", kHeapBytes);
    vas.Touch(heap, 0, kHeapBytes / 2, /*write=*/true);
    for (int i = 0; i < 64; ++i) {
      const RegionId chunk = vas.MapAnonymous("chunk" + std::to_string(i), kChunkSize);
      vas.Touch(chunk, 0, kChunkSize / 2, /*write=*/true);
    }
    const FileId image = registry.RegisterFile("libjvm.so", 16 * kMiB);
    const RegionId img1 = vas.MapFile("libjvm.so", image);
    const RegionId img2 = sharer.MapFile("libjvm.so", image);
    vas.Touch(img1, 0, 12 * kMiB, /*write=*/false);
    sharer.Touch(img2, 0, 8 * kMiB, /*write=*/false);
  }
};

// USS/RSS/PSS query: fired on every GC cycle, freeze, reclaim, and sample
// tick. This is the headline number of the O(1)-accounting work.
void BM_Usage(benchmark::State& state) {
  InstanceShapedSpace space;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.vas.Usage());
  }
}
BENCHMARK(BM_Usage);

// smaps-style per-region breakdown (library-unmap scans read this).
void BM_Smaps(benchmark::State& state) {
  InstanceShapedSpace space;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.vas.Smaps());
  }
}
BENCHMARK(BM_Smaps);

// Heap-space residency probe over a half-resident 256 MiB range.
void BM_ResidentPagesInRange(benchmark::State& state) {
  InstanceShapedSpace space;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.vas.ResidentPagesInRange(space.heap, 0, kHeapBytes));
  }
}
BENCHMARK(BM_ResidentPagesInRange);

// Swap-out scan (the semantics-blind §5.6 baseline) + swap-in re-touch.
void BM_SwapOutCycle(benchmark::State& state) {
  VirtualAddressSpace vas(nullptr);
  const RegionId r = vas.MapAnonymous("heap", 64 * kMiB);
  vas.Touch(r, 0, 64 * kMiB, /*write=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vas.SwapOutPages(BytesToPages(64 * kMiB)));
    benchmark::DoNotOptimize(vas.Touch(r, 0, 64 * kMiB, /*write=*/true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(64 * kMiB));
}
BENCHMARK(BM_SwapOutCycle);

// Shared-file page churn: read-fault and release a file mapping while a
// second process keeps the pages shared (exercises refcount bookkeeping).
void BM_SharedFileChurn(benchmark::State& state) {
  SharedFileRegistry registry;
  const FileId file = registry.RegisterFile("node", 32 * kMiB);
  VirtualAddressSpace p1(&registry);
  VirtualAddressSpace p2(&registry);
  const RegionId r1 = p1.MapFile("node", file);
  const RegionId r2 = p2.MapFile("node", file);
  p2.Touch(r2, 0, 32 * kMiB, /*write=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p1.Touch(r1, 0, 32 * kMiB, /*write=*/false));
    benchmark::DoNotOptimize(p1.Release(r1, 0, 32 * kMiB));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(32 * kMiB));
}
BENCHMARK(BM_SharedFileChurn);

}  // namespace

BENCHMARK_MAIN();
