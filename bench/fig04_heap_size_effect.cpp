// Figure 4: frozen-garbage ratios under different memory settings (§3.3).
// Java's serial GC controls the heap regardless of the budget; V8's ratios
// grow with the heap because the young-generation cap scales with it.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr uint64_t kBudgets[] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};
constexpr Language kLanguages[] = {Language::kJava, Language::kJavaScript};

struct Row {
  uint64_t budget = 0;
  Language language = Language::kJava;
  double mean_avg_ratio = 0.0;
  double mean_max_ratio = 0.0;
  bool filled = false;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void RunSetting(size_t slot, uint64_t budget, Language language) {
  double avg_sum = 0.0;
  double max_sum = 0.0;
  int count = 0;
  for (const WorkloadSpec* w : SuiteByLanguage(language)) {
    const SingleFunctionResult r = RunSingleFunction(*w, budget, /*iterations=*/60);
    avg_sum += r.avg_ratio;
    max_sum += r.max_ratio;
    ++count;
  }
  g_rows[slot] = {budget, language, avg_sum / count, max_sum / count, true};
}

void PrintTables() {
  for (const Language language : kLanguages) {
    Table table({"memory_budget_mib", "mean_avg_ratio", "mean_max_ratio"});
    for (const Row& row : g_rows) {
      if (!row.filled || row.language != language) {
        continue;
      }
      table.AddRow({std::to_string(row.budget / kMiB), Table::Fmt(row.mean_avg_ratio),
                    Table::Fmt(row.mean_max_ratio)});
    }
    table.Print(std::string("Figure 4") + (language == Language::kJava ? "a" : "b") +
                ": ratios vs memory setting (" + LanguageName(language) + ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const uint64_t budget : kBudgets) {
    for (const Language language : kLanguages) {
      const size_t slot = cells.size();
      cells.push_back({"fig04/" + std::to_string(budget / kMiB) + "MiB/" +
                           LanguageName(language),
                       [slot, budget, language] { RunSetting(slot, budget, language); }});
    }
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTables();
  return 0;
}
