// Extension: Desiccant on a multi-invoker cluster, across routing policies.
//
// Affinity routing concentrates each function's frozen instances on a home
// node (maximizing warm reuse); round-robin scatters them (every node pays
// cold boots for every function); least-loaded sits in between. Desiccant
// helps in all cases by letting each node cache more — the gap to vanilla is
// largest where the per-node cache is most contended.
#include "bench/bench_util.h"
#include "src/faas/cluster.h"

namespace {

using namespace desiccant;

struct Row {
  std::string routing;
  std::string mode;
  double cold_boots_per_s;
  double p99_ms;
  double throughput_rps;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, RoutingPolicy routing, MemoryMode mode) {
  ClusterConfig config;
  config.node_count = 4;
  config.routing = routing;
  config.node.mode = mode;
  config.node.cache_capacity_bytes = 384 * kMiB;  // 1.5 GiB cluster-wide
  config.node.cpu_cores = 0.8;                    // 3.2 cores cluster-wide

  Cluster cluster(config);
  std::vector<std::unique_ptr<DesiccantManager>> managers;
  if (mode == MemoryMode::kDesiccant) {
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      managers.push_back(
          std::make_unique<DesiccantManager>(&cluster.node(i), DesiccantConfig{}));
    }
  }

  std::vector<const WorkloadSpec*> workloads;
  for (const WorkloadSpec& w : CoarseSuite()) {
    workloads.push_back(&w);
  }
  TraceGenerator generator(1234);
  const auto trace_functions = generator.BuildSuiteTrace(workloads);
  const SimTime warmup_end = FromSeconds(60);
  const SimTime replay_end = warmup_end + FromSeconds(180);
  for (const TraceArrival& a : generator.Generate(trace_functions, 15.0, 0, warmup_end)) {
    cluster.Submit(a.workload, a.time);
  }
  for (const TraceArrival& a :
       generator.Generate(trace_functions, 20.0, warmup_end, replay_end)) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.RunUntil(warmup_end);
  cluster.BeginMeasurement();
  cluster.RunUntil(replay_end);
  const PlatformMetrics m = cluster.AggregateMetrics();
  g_rows[slot] = {RoutingPolicyName(routing), MemoryModeName(mode), m.ColdBootsPerSecond(),
                  m.latency_ms.Percentile(99), m.ThroughputRps()};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const RoutingPolicy routing :
       {RoutingPolicy::kAffinity, RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded}) {
    for (const MemoryMode mode : {MemoryMode::kVanilla, MemoryMode::kDesiccant}) {
      const size_t slot = cells.size();
      cells.push_back({std::string("ext_cluster/") + RoutingPolicyName(routing) + "/" +
                           MemoryModeName(mode),
                       [slot, routing, mode] { Run(slot, routing, mode); }});
    }
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"routing", "mode", "cold_boots_per_s", "p99_ms", "throughput_rps"});
  for (const Row& row : g_rows) {
    table.AddRow({row.routing, row.mode, Table::Fmt(row.cold_boots_per_s, 3),
                  Table::Fmt(row.p99_ms), Table::Fmt(row.throughput_rps)});
  }
  table.Print("Extension: 4-node cluster, routing policy x memory manager (SF 20)");
  return 0;
}
