// Figure 9: performance on Azure-style traces (§5.3): cold-boot rate,
// throughput, and CPU utilization vs scale factor, for vanilla / eager /
// Desiccant. The paper reports up to 4.49x fewer cold boots vs vanilla
// (3.75x vs eager), +17.4% throughput, and <= 6.2% reclamation CPU overhead.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr double kScaleFactors[] = {5.0, 10.0, 15.0, 20.0, 25.0, 30.0};
constexpr MemoryMode kModes[] = {MemoryMode::kVanilla, MemoryMode::kEager,
                                 MemoryMode::kDesiccant};

struct Row {
  double scale_factor = 0.0;
  MemoryMode mode = MemoryMode::kVanilla;
  ReplayResult result;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, double scale_factor, MemoryMode mode) {
  ReplayConfig config;
  config.mode = mode;
  config.scale_factor = scale_factor;
  g_rows[slot] = {scale_factor, mode, RunReplay(config)};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const double sf : kScaleFactors) {
    for (const MemoryMode mode : kModes) {
      const size_t slot = cells.size();
      cells.push_back(
          {"fig09/sf:" + std::to_string(static_cast<int>(sf)) + "/" + MemoryModeName(mode),
           [slot, sf, mode] { Run(slot, sf, mode); }});
    }
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table boots({"scale_factor", "vanilla", "eager", "desiccant", "vanilla_vs_desiccant",
               "eager_vs_desiccant"});
  Table throughput({"scale_factor", "vanilla_rps", "eager_rps", "desiccant_rps"});
  Table cpu({"scale_factor", "vanilla_util", "eager_util", "desiccant_util",
             "desiccant_reclaim_share"});
  for (const double sf : kScaleFactors) {
    const Row* rows[3] = {};
    for (const Row& row : g_rows) {
      if (row.scale_factor == sf) {
        rows[static_cast<int>(row.mode)] = &row;
      }
    }
    const std::string sf_label = "fig09 sf=" + std::to_string(static_cast<int>(sf));
    const PlatformMetrics& v = CheckedCell(rows[0], sf_label + " vanilla").result.metrics;
    const PlatformMetrics& e = CheckedCell(rows[1], sf_label + " eager").result.metrics;
    const Row& d_row = CheckedCell(rows[2], sf_label + " desiccant");
    const PlatformMetrics& d = d_row.result.metrics;
    const double d_boots = std::max(d.ColdBootsPerSecond(), 1e-6);
    boots.AddRow({Table::Fmt(sf, 0), Table::Fmt(v.ColdBootsPerSecond(), 3),
                  Table::Fmt(e.ColdBootsPerSecond(), 3), Table::Fmt(d.ColdBootsPerSecond(), 3),
                  Table::Fmt(v.ColdBootsPerSecond() / d_boots, 1),
                  Table::Fmt(e.ColdBootsPerSecond() / d_boots, 1)});
    throughput.AddRow({Table::Fmt(sf, 0), Table::Fmt(v.ThroughputRps()),
                       Table::Fmt(e.ThroughputRps()), Table::Fmt(d.ThroughputRps())});
    const double cores = d_row.result.cores;
    const double reclaim_share =
        d.cpu_busy_core_s > 0 ? d.reclaim_cpu_core_s / d.cpu_busy_core_s : 0.0;
    cpu.AddRow({Table::Fmt(sf, 0), Table::Fmt(v.CpuUtilization(cores), 3),
                Table::Fmt(e.CpuUtilization(cores), 3), Table::Fmt(d.CpuUtilization(cores), 3),
                Table::Fmt(reclaim_share, 3)});
  }
  boots.Print("Figure 9a: cold boot rate (per second)");
  throughput.Print("Figure 9b: throughput (requests/second)");
  cpu.Print("Figure 9c: CPU utilization (fraction of cores; reclaim share of busy CPU)");
  return 0;
}
