// Figure 11: memory efficiency on AWS Lambda (§5.4): private runtime images
// (no sharing), reclamation triggered by a special invocation after 100
// executions. The paper reports 2.08x average improvement for Java and 2.76x
// for JavaScript; image-pipeline (external process calls) is excluded on
// Lambda, and so is specjbb2015 in our six-function Java subset.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string name;
  Language language;
  double vanilla_mib;
  double desiccant_mib;
  double improvement;
};

std::vector<Row> g_rows;

bool OnLambda(const std::string& name) {
  return name != "image-pipeline" && name != "specjbb2015";
}

void RunLanguage(Language language) {
  for (const WorkloadSpec* w : SuiteByLanguage(language)) {
    if (!OnLambda(w->name)) {
      continue;
    }
    const SingleFunctionResult r = RunSingleFunction(
        *w, 256 * kMiB, /*iterations=*/100, ImageSharing::kLambdaPrivate);
    g_rows.push_back({w->name, language, ToMiB(r.vanilla.uss), ToMiB(r.desiccant.uss),
                      static_cast<double>(r.vanilla.uss) / r.desiccant.uss});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterExperiment("fig11/java", [] { RunLanguage(Language::kJava); });
  RegisterExperiment("fig11/javascript", [] { RunLanguage(Language::kJavaScript); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const Language language : {Language::kJava, Language::kJavaScript}) {
    Table table({"function", "vanilla_mib", "desiccant_mib", "improvement"});
    double sum = 0.0;
    int count = 0;
    for (const Row& row : g_rows) {
      if (row.language != language) {
        continue;
      }
      table.AddRow({row.name, Table::Fmt(row.vanilla_mib), Table::Fmt(row.desiccant_mib),
                    Table::Fmt(row.improvement)});
      sum += row.improvement;
      ++count;
    }
    table.AddRow({"MEAN", "", "", Table::Fmt(sum / count)});
    table.Print(std::string("Figure 11: Lambda mode (private images), ") +
                LanguageName(language));
  }
  return 0;
}
