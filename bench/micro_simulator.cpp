// Microbenchmarks of the simulator itself (real wall-clock timing, unlike the
// figure benches which measure *simulated* quantities). Useful to keep the
// substrate fast enough for trace replay: allocation, collection, residency
// accounting and reclaim paths.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include <random>

#include "src/base/id_slot_map.h"
#include "src/base/sim_clock.h"
#include "src/faas/event_queue.h"
#include "src/faas/function_registry.h"
#include "src/faas/heap_event_queue.h"
#include "src/faas/instance.h"
#include "src/hotspot/hotspot_runtime.h"
#include "src/v8/v8_runtime.h"
#include "src/workloads/function_spec.h"

// Counting global allocator so benches can assert heap behavior (e.g. that
// steady-state EventQueue traffic performs zero allocations) rather than
// infer it from timing.
std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

// GCC pairs `new` expressions elsewhere in the TU with these overloads and
// flags the free() as mismatched; it isn't — the matching operator new above
// allocates with malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace desiccant;

void BM_HotSpotAllocation(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AllocateObject(size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_HotSpotAllocation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_V8Allocation(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  V8Runtime runtime(&vas, &clock, V8Config::ForInstanceBudget(256 * kMiB), &registry);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AllocateObject(size));
    clock.AdvanceBy(kMicrosecond);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_V8Allocation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FullGcWithLiveSet(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  // Build a live set of `range` objects.
  for (int64_t i = 0; i < state.range(0); ++i) {
    runtime.strong_roots().Create(runtime.AllocateObject(1024));
  }
  for (auto _ : state) {
    runtime.CollectGarbage(false);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullGcWithLiveSet)->Arg(1000)->Arg(10000);

void BM_UsageAccounting(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  for (int i = 0; i < 5000; ++i) {
    runtime.AllocateObject(4096);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vas.Usage());
  }
}
BENCHMARK(BM_UsageAccounting);

void BM_InstanceInvocation(benchmark::State& state) {
  SharedFileRegistry registry;
  Instance instance(1, FindWorkload("sort"), 0, 256 * kMiB, &registry, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.Execute());
  }
}
BENCHMARK(BM_InstanceInvocation);

void BM_ReclaimCycle(benchmark::State& state) {
  SharedFileRegistry registry;
  Instance instance(1, FindWorkload("fft"), 0, 256 * kMiB, &registry, 3);
  for (auto _ : state) {
    for (int i = 0; i < 5; ++i) {
      instance.Execute();
    }
    instance.Freeze(instance.exec_clock().Now());
    benchmark::DoNotOptimize(instance.Reclaim({}, true));
    instance.Thaw();
  }
}
BENCHMARK(BM_ReclaimCycle);

// Steady-state discrete-event traffic: one Schedule + one RunNext per
// iteration with a Request-sized capture, against a pre-grown queue. The
// `heap_allocs_per_op` counter must read ~0 (closures never allocate —
// that is the point of the InlineClosure representation; the residue, on
// the order of 1e-4/op and decaying, is wheel buckets growing past a
// previous high-water occupancy).
void BM_EventQueueScheduleRunNext(benchmark::State& state) {
  EventQueue queue;
  SimClock clock;
  queue.Reserve(1024);
  struct Payload {
    uint64_t words[8] = {};  // 64 bytes: the size class of a captured Request
  };
  uint64_t sink = 0;
  for (uint64_t i = 0; i < 512; ++i) {
    Payload p;
    p.words[0] = i;
    queue.Schedule(clock.Now() + (i + 1) * kMicrosecond,
                   [p, &sink] { sink += p.words[0]; });
  }
  uint64_t t = 512;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    Payload p;
    p.words[0] = t++;
    queue.Schedule(clock.Now() + 1000 * kMicrosecond,
                   [p, &sink] { sink += p.words[0]; });
    queue.RunNext(&clock);
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRunNext);

// Schedule + RunNext against a large standing population of pending events,
// timing wheel (the production EventQueue) vs the reference binary heap.
// The heap pays O(log n) sift per operation against the standing population;
// the wheel's cost is independent of it — that flat line across
// 1k/100k/1M live events is the reason the wheel exists. Horizons are drawn
// from a seeded spread of bands (sub-bucket to tens of simulated seconds) so
// every wheel rung participates. The wheel rows also pin the amortized-zero
// allocation property via `heap_allocs_per_op`: buckets approach their
// high-water capacity during warmup and recycle afterwards, so the counter
// must read orders of magnitude below one allocation per op (it cannot be
// exactly zero — random horizon clustering keeps finding new per-bucket
// occupancy maxima at a decaying rate).
template <typename Queue>
void ScheduleRunNextWithLiveEvents(benchmark::State& state) {
  Queue queue;
  SimClock clock;
  const uint64_t live = static_cast<uint64_t>(state.range(0));
  queue.Reserve(live + 16);
  struct Payload {
    uint64_t words[8] = {};  // 64 bytes: the size class of a captured Request
  };
  uint64_t sink = 0;
  std::mt19937_64 rng(20260809);
  const auto horizon = [&rng]() -> SimTime {
    switch (rng() % 4) {
      case 0: return 1 + rng() % kMillisecond;          // current / next l0 slot
      case 1: return 1 + rng() % (50 * kMillisecond);   // deep l0
      case 2: return 1 + rng() % (2 * kSecond);         // l1/l2 rungs
      default: return 1 + rng() % (20 * kSecond);       // far future
    }
  };
  for (uint64_t i = 0; i < live; ++i) {
    Payload p;
    p.words[0] = i;
    queue.Schedule(clock.Now() + horizon(), [p, &sink] { sink += p.words[0]; });
  }
  // Warmup outside the timed loop: lets the wheel's buckets (and the heap's
  // backing array) reach steady capacity so the timed region measures the
  // recycle path, not first-growth. Sized to cycle the full standing
  // population through the wheel several times — a bucket's vector stops
  // growing only once it has seen its high-water occupancy.
  const uint64_t warmup = std::max<uint64_t>(4096, 4 * live);
  for (uint64_t i = 0; i < warmup; ++i) {
    Payload p;
    p.words[0] = i;
    queue.Schedule(clock.Now() + horizon(), [p, &sink] { sink += p.words[0]; });
    queue.RunNext(&clock);
  }
  uint64_t t = live;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    Payload p;
    p.words[0] = t++;
    queue.Schedule(clock.Now() + horizon(), [p, &sink] { sink += p.words[0]; });
    queue.RunNext(&clock);
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.counters["live_events"] = static_cast<double>(live);
  benchmark::DoNotOptimize(sink);
}

void BM_WheelScheduleRunNext(benchmark::State& state) {
  ScheduleRunNextWithLiveEvents<EventQueue>(state);
}
BENCHMARK(BM_WheelScheduleRunNext)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_HeapScheduleRunNext(benchmark::State& state) {
  ScheduleRunNextWithLiveEvents<HeapEventQueue>(state);
}
BENCHMARK(BM_HeapScheduleRunNext)->Arg(1000)->Arg(100000)->Arg(1000000);

// The Platform hot-map access pattern: dense monotonically allocated ids,
// erase-oldest churn, point lookups. IdSlotMap (open addressing, inline
// entries, backward-shift erase) vs the std::unordered_map it replaced
// (node allocation per insert, bucket-chain chase per lookup).
template <typename Map>
void MapChurn(benchmark::State& state) {
  Map map;
  const uint64_t live = static_cast<uint64_t>(state.range(0));
  uint64_t next_id = 1;
  for (uint64_t i = 0; i < live; ++i) {
    map[next_id] = next_id;
    ++next_id;
  }
  uint64_t probe = 0;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    map[next_id] = next_id;
    ++next_id;
    map.erase(next_id - live - 1);
    benchmark::DoNotOptimize(map.count(next_id - 1 - (probe++ % live)));
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}

void BM_IdSlotMapChurn(benchmark::State& state) { MapChurn<IdSlotMap<uint64_t>>(state); }
BENCHMARK(BM_IdSlotMapChurn)->Arg(1024)->Arg(65536);

void BM_UnorderedMapChurn(benchmark::State& state) {
  MapChurn<std::unordered_map<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_UnorderedMapChurn)->Arg(1024)->Arg(65536);

// The warm-pool lookup the platform performs per request, before and after
// interning. Legacy: build "<workload>#<stage>" and hash it into an
// unordered_map. Interned: resolve the (pointer, stage) site to a dense
// FunctionId and index a flat vector — no string is ever materialized.
void BM_WarmPoolLookupLegacyString(benchmark::State& state) {
  const std::vector<WorkloadSpec>& suite = WorkloadSuite();
  std::unordered_map<std::string, std::vector<int>> pool;
  for (const WorkloadSpec& w : suite) {
    for (size_t stage = 0; stage < w.chain_length(); ++stage) {
      pool[w.name + "#" + std::to_string(stage)].push_back(1);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    const WorkloadSpec& w = suite[i % suite.size()];
    const size_t stage = i % w.chain_length();
    benchmark::DoNotOptimize(pool.find(w.name + "#" + std::to_string(stage)));
    ++i;
  }
}
BENCHMARK(BM_WarmPoolLookupLegacyString);

void BM_WarmPoolLookupInterned(benchmark::State& state) {
  const std::vector<WorkloadSpec>& suite = WorkloadSuite();
  FunctionRegistry registry;
  for (const WorkloadSpec& w : suite) {
    for (size_t stage = 0; stage < w.chain_length(); ++stage) {
      registry.Intern(&w, stage);
    }
  }
  std::vector<std::vector<int>> pool(registry.size(), std::vector<int>(1, 1));
  size_t i = 0;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const WorkloadSpec& w = suite[i % suite.size()];
    const size_t stage = i % w.chain_length();
    const FunctionId id = registry.Intern(&w, stage);
    benchmark::DoNotOptimize(pool[id].data());
    ++i;
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WarmPoolLookupInterned);

}  // namespace

// Hand-rolled main (vs BENCHMARK_MAIN) so a DESICCANT_EVENT_PROFILE=1 run
// ends with the per-event-kind cost table for whatever the benches dispatched.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (desiccant::EventProfile::Enabled()) {
    desiccant::EventProfile::PrintTable(stdout);
  }
  return 0;
}
