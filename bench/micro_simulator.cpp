// Microbenchmarks of the simulator itself (real wall-clock timing, unlike the
// figure benches which measure *simulated* quantities). Useful to keep the
// substrate fast enough for trace replay: allocation, collection, residency
// accounting and reclaim paths.
#include <benchmark/benchmark.h>

#include "src/base/sim_clock.h"
#include "src/faas/instance.h"
#include "src/hotspot/hotspot_runtime.h"
#include "src/v8/v8_runtime.h"
#include "src/workloads/function_spec.h"

namespace {

using namespace desiccant;

void BM_HotSpotAllocation(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AllocateObject(size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_HotSpotAllocation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_V8Allocation(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  V8Runtime runtime(&vas, &clock, V8Config::ForInstanceBudget(256 * kMiB), &registry);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AllocateObject(size));
    clock.AdvanceBy(kMicrosecond);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_V8Allocation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FullGcWithLiveSet(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  // Build a live set of `range` objects.
  for (int64_t i = 0; i < state.range(0); ++i) {
    runtime.strong_roots().Create(runtime.AllocateObject(1024));
  }
  for (auto _ : state) {
    runtime.CollectGarbage(false);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullGcWithLiveSet)->Arg(1000)->Arg(10000);

void BM_UsageAccounting(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  for (int i = 0; i < 5000; ++i) {
    runtime.AllocateObject(4096);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vas.Usage());
  }
}
BENCHMARK(BM_UsageAccounting);

void BM_InstanceInvocation(benchmark::State& state) {
  SharedFileRegistry registry;
  Instance instance(1, FindWorkload("sort"), 0, 256 * kMiB, &registry, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.Execute());
  }
}
BENCHMARK(BM_InstanceInvocation);

void BM_ReclaimCycle(benchmark::State& state) {
  SharedFileRegistry registry;
  Instance instance(1, FindWorkload("fft"), 0, 256 * kMiB, &registry, 3);
  for (auto _ : state) {
    for (int i = 0; i < 5; ++i) {
      instance.Execute();
    }
    instance.Freeze(instance.exec_clock().Now());
    benchmark::DoNotOptimize(instance.Reclaim({}, true));
    instance.Thaw();
  }
}
BENCHMARK(BM_ReclaimCycle);

}  // namespace

BENCHMARK_MAIN();
