// Microbenchmarks of the simulator itself (real wall-clock timing, unlike the
// figure benches which measure *simulated* quantities). Useful to keep the
// substrate fast enough for trace replay: allocation, collection, residency
// accounting and reclaim paths.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/faas/event_queue.h"
#include "src/faas/function_registry.h"
#include "src/faas/instance.h"
#include "src/hotspot/hotspot_runtime.h"
#include "src/v8/v8_runtime.h"
#include "src/workloads/function_spec.h"

// Counting global allocator so benches can assert heap behavior (e.g. that
// steady-state EventQueue traffic performs zero allocations) rather than
// infer it from timing.
std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

// GCC pairs `new` expressions elsewhere in the TU with these overloads and
// flags the free() as mismatched; it isn't — the matching operator new above
// allocates with malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace desiccant;

void BM_HotSpotAllocation(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AllocateObject(size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_HotSpotAllocation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_V8Allocation(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  V8Runtime runtime(&vas, &clock, V8Config::ForInstanceBudget(256 * kMiB), &registry);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AllocateObject(size));
    clock.AdvanceBy(kMicrosecond);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_V8Allocation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FullGcWithLiveSet(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  // Build a live set of `range` objects.
  for (int64_t i = 0; i < state.range(0); ++i) {
    runtime.strong_roots().Create(runtime.AllocateObject(1024));
  }
  for (auto _ : state) {
    runtime.CollectGarbage(false);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullGcWithLiveSet)->Arg(1000)->Arg(10000);

void BM_UsageAccounting(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  for (int i = 0; i < 5000; ++i) {
    runtime.AllocateObject(4096);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vas.Usage());
  }
}
BENCHMARK(BM_UsageAccounting);

void BM_InstanceInvocation(benchmark::State& state) {
  SharedFileRegistry registry;
  Instance instance(1, FindWorkload("sort"), 0, 256 * kMiB, &registry, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.Execute());
  }
}
BENCHMARK(BM_InstanceInvocation);

void BM_ReclaimCycle(benchmark::State& state) {
  SharedFileRegistry registry;
  Instance instance(1, FindWorkload("fft"), 0, 256 * kMiB, &registry, 3);
  for (auto _ : state) {
    for (int i = 0; i < 5; ++i) {
      instance.Execute();
    }
    instance.Freeze(instance.exec_clock().Now());
    benchmark::DoNotOptimize(instance.Reclaim({}, true));
    instance.Thaw();
  }
}
BENCHMARK(BM_ReclaimCycle);

// Steady-state discrete-event traffic: one Schedule + one RunNext per
// iteration with a Request-sized capture, against a pre-grown queue. The
// `heap_allocs_per_op` counter must read 0.00 — that is the point of the
// InlineClosure event representation.
void BM_EventQueueScheduleRunNext(benchmark::State& state) {
  EventQueue queue;
  SimClock clock;
  queue.Reserve(1024);
  struct Payload {
    uint64_t words[8] = {};  // 64 bytes: the size class of a captured Request
  };
  uint64_t sink = 0;
  for (uint64_t i = 0; i < 512; ++i) {
    Payload p;
    p.words[0] = i;
    queue.Schedule(clock.Now() + (i + 1) * kMicrosecond,
                   [p, &sink] { sink += p.words[0]; });
  }
  uint64_t t = 512;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    Payload p;
    p.words[0] = t++;
    queue.Schedule(clock.Now() + 1000 * kMicrosecond,
                   [p, &sink] { sink += p.words[0]; });
    queue.RunNext(&clock);
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRunNext);

// The warm-pool lookup the platform performs per request, before and after
// interning. Legacy: build "<workload>#<stage>" and hash it into an
// unordered_map. Interned: resolve the (pointer, stage) site to a dense
// FunctionId and index a flat vector — no string is ever materialized.
void BM_WarmPoolLookupLegacyString(benchmark::State& state) {
  const std::vector<WorkloadSpec>& suite = WorkloadSuite();
  std::unordered_map<std::string, std::vector<int>> pool;
  for (const WorkloadSpec& w : suite) {
    for (size_t stage = 0; stage < w.chain_length(); ++stage) {
      pool[w.name + "#" + std::to_string(stage)].push_back(1);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    const WorkloadSpec& w = suite[i % suite.size()];
    const size_t stage = i % w.chain_length();
    benchmark::DoNotOptimize(pool.find(w.name + "#" + std::to_string(stage)));
    ++i;
  }
}
BENCHMARK(BM_WarmPoolLookupLegacyString);

void BM_WarmPoolLookupInterned(benchmark::State& state) {
  const std::vector<WorkloadSpec>& suite = WorkloadSuite();
  FunctionRegistry registry;
  for (const WorkloadSpec& w : suite) {
    for (size_t stage = 0; stage < w.chain_length(); ++stage) {
      registry.Intern(&w, stage);
    }
  }
  std::vector<std::vector<int>> pool(registry.size(), std::vector<int>(1, 1));
  size_t i = 0;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const WorkloadSpec& w = suite[i % suite.size()];
    const size_t stage = i % w.chain_length();
    const FunctionId id = registry.Intern(&w, stage);
    benchmark::DoNotOptimize(pool[id].data());
    ++i;
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WarmPoolLookupInterned);

}  // namespace

BENCHMARK_MAIN();
