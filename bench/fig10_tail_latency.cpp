// Figure 10: tail latency at scale factors 15 and 25 (§5.3). The paper
// reports 33.1%/9.8%/37.5% p90/p95/p99 improvement over vanilla at SF 15;
// at SF 25 the p99 gap closes because CPU exhaustion dominates.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr double kScaleFactors[] = {15.0, 25.0};
constexpr MemoryMode kModes[] = {MemoryMode::kVanilla, MemoryMode::kEager,
                                 MemoryMode::kDesiccant};

struct Row {
  double scale_factor = 0.0;
  MemoryMode mode = MemoryMode::kVanilla;
  double p50 = 0.0, p90 = 0.0, p95 = 0.0, p99 = 0.0;
  double p99_queue = 0.0, p99_boot = 0.0, p99_exec = 0.0;
  bool filled = false;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, double scale_factor, MemoryMode mode) {
  ReplayConfig config;
  config.mode = mode;
  config.scale_factor = scale_factor;
  const ReplayResult result = RunReplay(config);
  const PercentileTracker& latency = result.metrics.latency_ms;
  g_rows[slot] = {scale_factor, mode, latency.Percentile(50), latency.Percentile(90),
                  latency.Percentile(95), latency.Percentile(99),
                  result.metrics.queue_ms.Percentile(99),
                  result.metrics.boot_ms.Percentile(99),
                  result.metrics.exec_ms.Percentile(99), true};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const double sf : kScaleFactors) {
    for (const MemoryMode mode : kModes) {
      const size_t slot = cells.size();
      cells.push_back(
          {"fig10/sf:" + std::to_string(static_cast<int>(sf)) + "/" + MemoryModeName(mode),
           [slot, sf, mode] { Run(slot, sf, mode); }});
    }
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const double sf : kScaleFactors) {
    Table table({"mode", "p50_ms", "p90_ms", "p95_ms", "p99_ms", "p99_improvement_pct"});
    const Row* vanilla = nullptr;
    for (const Row& row : g_rows) {
      if (row.filled && row.scale_factor == sf && row.mode == MemoryMode::kVanilla) {
        vanilla = &row;
      }
    }
    const Row& baseline = CheckedCell(
        vanilla, "fig10 sf=" + std::to_string(static_cast<int>(sf)) + " vanilla");
    for (const Row& row : g_rows) {
      if (!row.filled || row.scale_factor != sf) {
        continue;
      }
      const double improvement =
          baseline.p99 > 0 ? (1.0 - row.p99 / baseline.p99) * 100.0 : 0.0;
      table.AddRow({MemoryModeName(row.mode), Table::Fmt(row.p50), Table::Fmt(row.p90),
                    Table::Fmt(row.p95), Table::Fmt(row.p99), Table::Fmt(improvement, 1)});
    }
    table.Print("Figure 10: tail latency at scale factor " + Table::Fmt(sf, 0));
  }

  // Supplement: where the tail comes from (p99 of each component).
  for (const double sf : kScaleFactors) {
    Table table({"mode", "p99_queue_ms", "p99_boot_ms", "p99_exec_ms"});
    for (const Row& row : g_rows) {
      if (!row.filled || row.scale_factor != sf) {
        continue;
      }
      table.AddRow({MemoryModeName(row.mode), Table::Fmt(row.p99_queue),
                    Table::Fmt(row.p99_boot), Table::Fmt(row.p99_exec)});
    }
    table.Print("Figure 10 supplement: latency decomposition at scale factor " +
                Table::Fmt(sf, 0));
  }
  return 0;
}
