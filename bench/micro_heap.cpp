// Microbenchmarks of the heap-simulator inner loops (real wall-clock timing,
// like micro_simulator/micro_os): the steady-state young-GC cycle, the
// batched cluster-allocation fast path, and one fig09 replay cell end to end.
//
// The Legacy/Epoch pair rebuilds the pre-epoch collector inner loop from the
// same public primitives (bool-style marking with an end-of-GC unmark sweep,
// per-collection vector allocations, one page touch per object) so the two
// can be compared inside one binary on identical simulation work.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/sim_clock.h"
#include "src/heap/contiguous_space.h"
#include "src/heap/object.h"
#include "src/heap/roots.h"
#include "src/hotspot/hotspot_runtime.h"
#include "src/v8/v8_runtime.h"

// Counting global allocator so the zero-allocation claims are asserted, not
// inferred from timing (same device as micro_simulator).
std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

// GCC pairs `new` expressions elsewhere in the TU with these overloads and
// flags the free() as mismatched; it isn't — the matching operator new above
// allocates with malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace desiccant;

// ---------------------------------------------------------------------------
// Steady-state young-GC cycle: a nursery fills with 256-byte objects (a
// 32-slot rooted window stays live, everything else dies young), then a
// serial copying collection runs. One benchmark iteration = one full cycle.

constexpr uint64_t kNurseryBytes = 64 * kKiB;
constexpr uint32_t kObjectSize = 256;
constexpr size_t kWindowSlots = 32;
constexpr size_t kClusterSize = 8;

struct Nursery {
  Nursery()
      : vas(nullptr),
        region(vas.MapAnonymous("nursery", 8 * kMiB)),
        eden("eden", &vas, region) {
    eden.SetBounds(0, kNurseryBytes);
    for (size_t i = 0; i < kWindowSlots; ++i) {
      window.push_back(roots.Create(nullptr));
    }
  }

  VirtualAddressSpace vas;
  RegionId region;
  ObjectPool pool;
  ContiguousSpace eden;
  RootTable roots;
  std::vector<RootTable::Handle> window;
  size_t cursor = 0;

  void Root(SimObject* obj) {
    roots.Set(window[cursor], obj);
    cursor = (cursor + 1) % kWindowSlots;
  }
};

// The pre-PR shape: one page touch per object, bool-style marking (epoch used
// as a 0/1 flag), per-collection vectors, and the end-of-GC unmark sweep.
void YoungCycleLegacy(Nursery& n) {
  TouchResult faults;
  while (n.eden.CanAllocate(kObjectSize)) {
    SimObject* obj = n.pool.New(kObjectSize);
    n.eden.Allocate(obj, &faults);
    n.Root(obj);
  }
  std::vector<SimObject*> stack;  // allocated per collection
  n.roots.ForEach([&stack](SimObject* obj) {
    if (obj->mark_epoch == 0) {
      obj->mark_epoch = 1;
      stack.push_back(obj);
    }
  });
  while (!stack.empty()) {
    SimObject* obj = stack.back();
    stack.pop_back();
    for (int i = 0; i < obj->ref_count; ++i) {
      SimObject* ref = obj->refs[i];
      if (ref != nullptr && ref->mark_epoch == 0) {
        ref->mark_epoch = 1;
        stack.push_back(ref);
      }
    }
  }
  std::vector<SimObject*> survivors;  // allocated per collection
  for (SimObject* obj : n.eden.objects()) {
    if (obj->mark_epoch == 1) {
      survivors.push_back(obj);
    } else {
      n.pool.Free(obj);
    }
  }
  n.eden.Reset();
  for (SimObject* obj : survivors) {
    n.eden.Allocate(obj, &faults);
  }
  for (SimObject* obj : survivors) {
    obj->mark_epoch = 0;  // the unmark sweep
  }
}

// The post-PR shape: batched span allocation, epoch marking, reused scratch.
struct EpochScratch {
  std::vector<SimObject*> stack;
  std::vector<SimObject*> survivors;
  uint32_t epoch = 0;
};

void YoungCycleEpoch(Nursery& n, EpochScratch& s) {
  TouchResult faults;
  SimObject* cluster[kClusterSize];
  constexpr uint64_t kClusterBytes = kClusterSize * kObjectSize;
  while (n.eden.CanAllocateSpan(kClusterBytes)) {
    for (auto& obj : cluster) {
      obj = n.pool.New(kObjectSize);
    }
    n.eden.AllocateSpan(cluster, kClusterSize, kClusterBytes, &faults);
    for (SimObject* obj : cluster) {
      n.Root(obj);
    }
  }
  while (n.eden.CanAllocate(kObjectSize)) {  // tail the cluster gate refused
    SimObject* obj = n.pool.New(kObjectSize);
    n.eden.Allocate(obj, &faults);
    n.Root(obj);
  }
  const uint32_t epoch = ++s.epoch;
  s.stack.clear();
  n.roots.ForEach([&s, epoch](SimObject* obj) {
    if (obj->mark_epoch != epoch) {
      obj->mark_epoch = epoch;
      s.stack.push_back(obj);
    }
  });
  while (!s.stack.empty()) {
    SimObject* obj = s.stack.back();
    s.stack.pop_back();
    for (int i = 0; i < obj->ref_count; ++i) {
      SimObject* ref = obj->refs[i];
      if (ref != nullptr && ref->mark_epoch != epoch) {
        ref->mark_epoch = epoch;
        s.stack.push_back(ref);
      }
    }
  }
  s.survivors.clear();
  for (SimObject* obj : n.eden.objects()) {
    if (obj->mark_epoch == epoch) {
      s.survivors.push_back(obj);
    } else {
      n.pool.Free(obj);
    }
  }
  n.eden.Reset();
  for (SimObject* obj : s.survivors) {
    n.eden.Allocate(obj, &faults);
  }
  // No unmark sweep: the next cycle draws a fresh epoch.
}

void BM_YoungGcCycleLegacy(benchmark::State& state) {
  Nursery n;
  for (auto _ : state) {
    YoungCycleLegacy(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNurseryBytes / kObjectSize));
}
BENCHMARK(BM_YoungGcCycleLegacy);

void BM_YoungGcCycleEpoch(benchmark::State& state) {
  Nursery n;
  EpochScratch scratch;
  YoungCycleEpoch(n, scratch);  // warm the scratch to steady-state capacity
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    YoungCycleEpoch(n, scratch);
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNurseryBytes / kObjectSize));
}
BENCHMARK(BM_YoungGcCycleEpoch);

// ---------------------------------------------------------------------------
// The full HotSpot runtime under steady-state churn: a rooted rolling window
// drives periodic young collections. After warmup, one op (256 allocations
// plus its amortized share of collections) must perform zero host-heap
// allocations — this is the counter the CI smoke job asserts on.

void BM_HotSpotSteadyStateYoungChurn(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  RootTable& strong = runtime.strong_roots();
  std::vector<RootTable::Handle> window;
  for (int i = 0; i < 64; ++i) {
    window.push_back(strong.Create(nullptr));
  }
  size_t cursor = 0;
  const auto churn = [&](int objects) {
    for (int i = 0; i < objects; ++i) {
      strong.Set(window[cursor], runtime.AllocateObject(1024));
      cursor = (cursor + 1) % window.size();
    }
  };
  // Warm until several young collections have run, so every pool, space
  // vector and GC scratch buffer has reached its steady-state capacity.
  while (runtime.gc_log().size() < 8) {
    churn(4096);
  }
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    churn(256);
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_HotSpotSteadyStateYoungChurn);

void BM_V8SteadyStateScavengeChurn(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  V8Runtime runtime(&vas, &clock, V8Config::ForInstanceBudget(256 * kMiB), &registry);
  RootTable& strong = runtime.strong_roots();
  std::vector<RootTable::Handle> window;
  for (int i = 0; i < 64; ++i) {
    window.push_back(strong.Create(nullptr));
  }
  size_t cursor = 0;
  const auto churn = [&](int objects) {
    for (int i = 0; i < objects; ++i) {
      strong.Set(window[cursor], runtime.AllocateObject(1024));
      cursor = (cursor + 1) % window.size();
      clock.AdvanceBy(kMicrosecond);
    }
  };
  while (runtime.gc_log().size() < 8) {
    churn(4096);
  }
  for (auto _ : state) {
    churn(256);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_V8SteadyStateScavengeChurn);

// ---------------------------------------------------------------------------
// The mutator fast path on the real runtime: one 8-object cluster per op,
// per-object AllocateObject vs batched AllocateCluster. The two produce
// bit-identical simulation state; only the host cost differs.

void BM_HotSpotClusterPerObject(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  for (auto _ : state) {
    SimObject* parent = runtime.AllocateObject(512);
    benchmark::DoNotOptimize(parent);
    for (int i = 1; i < static_cast<int>(kClusterSize); ++i) {
      SimObject* child = runtime.AllocateObject(512);
      parent->AddRef(child);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kClusterSize * 512);
}
BENCHMARK(BM_HotSpotClusterPerObject);

void BM_HotSpotClusterBatched(benchmark::State& state) {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  uint32_t sizes[kClusterSize];
  for (auto& s : sizes) {
    s = 512;
  }
  SimObject* cluster[kClusterSize];
  for (auto _ : state) {
    if (!runtime.AllocateCluster(sizes, kClusterSize, cluster)) {
      // Eden boundary: take the slow path exactly as the workload does.
      cluster[0] = runtime.AllocateObject(512);
      for (size_t i = 1; i < kClusterSize; ++i) {
        cluster[i] = runtime.AllocateObject(512);
      }
    }
    for (size_t i = 1; i < kClusterSize; ++i) {
      cluster[0]->AddRef(cluster[i]);
    }
    benchmark::DoNotOptimize(cluster[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kClusterSize * 512);
}
BENCHMARK(BM_HotSpotClusterBatched);

// ---------------------------------------------------------------------------
// One small fig09 replay cell end to end (desiccant mode), the macro view of
// the same inner loops. Tracked PR over PR via BENCH_heap.json.

void BM_Fig09CellSmall(benchmark::State& state) {
  for (auto _ : state) {
    ReplayConfig config;
    config.mode = MemoryMode::kDesiccant;
    config.scale_factor = 8.0;
    config.warmup_seconds = 20.0;
    config.measure_seconds = 60.0;
    benchmark::DoNotOptimize(RunReplay(config));
  }
}
BENCHMARK(BM_Fig09CellSmall)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
