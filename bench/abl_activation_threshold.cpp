// Ablation: the dynamic activation threshold (§4.5.1) vs static thresholds,
// in two regimes:
//   * under memory pressure (scale factor 20, 1.5 GiB cache): a high static
//     threshold reacts too late (more evictions/cold boots);
//   * without pressure (scale factor 5, 8 GiB cache): a low static threshold
//     keeps reclaiming — and paying CPU — for no benefit, while the dynamic
//     policy stays inactive.
// Replay outcomes are noisy, so every cell averages three platform seeds.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr uint64_t kSeeds[] = {42, 43, 44};

struct Row {
  std::string regime;
  std::string policy;
  double cold_boots_per_s = 0.0;
  double evictions = 0.0;
  double reclaims = 0.0;
  double reclaim_cpu_core_s = 0.0;
  double p99_ms = 0.0;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, const std::string& regime, const std::string& name,
         const ActivationConfig& activation, double scale_factor, uint64_t cache) {
  Row row;
  row.regime = regime;
  row.policy = name;
  for (const uint64_t seed : kSeeds) {
    ReplayConfig config;
    config.mode = MemoryMode::kDesiccant;
    config.scale_factor = scale_factor;
    config.cache_capacity = cache;
    config.platform_seed = seed;
    config.desiccant.activation = activation;
    const ReplayResult result = RunReplay(config);
    const double n = std::size(kSeeds);
    row.cold_boots_per_s += result.metrics.ColdBootsPerSecond() / n;
    row.evictions += static_cast<double>(result.metrics.evictions) / n;
    row.reclaims += static_cast<double>(result.metrics.reclaims) / n;
    row.reclaim_cpu_core_s += result.metrics.reclaim_cpu_core_s / n;
    row.p99_ms += result.metrics.latency_ms.Percentile(99) / n;
  }
  g_rows[slot] = row;
}

ActivationConfig Static(double threshold) {
  ActivationConfig config;
  config.floor_threshold = threshold;
  config.initial_threshold = threshold;
  config.max_threshold = threshold;
  config.raise_per_second = 0.0;
  return config;
}

void RunOpportunistic(size_t slot, const std::string& regime, double scale_factor,
                      uint64_t cache) {
  Row row;
  row.regime = regime;
  row.policy = "dynamic+idle-cpu";
  for (const uint64_t seed : kSeeds) {
    ReplayConfig config;
    config.mode = MemoryMode::kDesiccant;
    config.scale_factor = scale_factor;
    config.cache_capacity = cache;
    config.platform_seed = seed;
    config.desiccant.opportunistic_on_idle_cpu = true;
    const ReplayResult result = RunReplay(config);
    const double n = std::size(kSeeds);
    row.cold_boots_per_s += result.metrics.ColdBootsPerSecond() / n;
    row.evictions += static_cast<double>(result.metrics.evictions) / n;
    row.reclaims += static_cast<double>(result.metrics.reclaims) / n;
    row.reclaim_cpu_core_s += result.metrics.reclaim_cpu_core_s / n;
    row.p99_ms += result.metrics.latency_ms.Percentile(99) / n;
  }
  g_rows[slot] = row;
}

void AppendCells(std::vector<ExperimentCell>& cells, const std::string& regime,
                 double scale_factor, uint64_t cache) {
  size_t slot = cells.size();
  cells.push_back({"abl_activation/" + regime + "/dynamic", [=] {
                     Run(slot, regime, "dynamic", ActivationConfig{}, scale_factor, cache);
                   }});
  slot = cells.size();
  cells.push_back({"abl_activation/" + regime + "/dynamic+idle",
                   [=] { RunOpportunistic(slot, regime, scale_factor, cache); }});
  for (const double t : {0.3, 0.7, 0.95}) {
    slot = cells.size();
    cells.push_back({"abl_activation/" + regime + "/static:" + Table::Fmt(t, 2), [=] {
                       Run(slot, regime, "static-" + Table::Fmt(t, 2), Static(t),
                           scale_factor, cache);
                     }});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  AppendCells(cells, "pressure", 20.0, 1536 * kMiB);
  AppendCells(cells, "no-pressure", 5.0, 8 * kGiB);
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"regime", "policy", "cold_boots_per_s", "evictions", "reclaims",
               "reclaim_cpu_core_s", "p99_ms"});
  for (const Row& row : g_rows) {
    table.AddRow({row.regime, row.policy, Table::Fmt(row.cold_boots_per_s, 3),
                  Table::Fmt(row.evictions, 0), Table::Fmt(row.reclaims, 0),
                  Table::Fmt(row.reclaim_cpu_core_s), Table::Fmt(row.p99_ms)});
  }
  table.Print("Ablation: activation threshold (3-seed mean)");
  return 0;
}
