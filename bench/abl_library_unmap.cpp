// Ablation: the §4.6 shared-library unmap optimization, in the OpenWhisk
// (shared images) and Lambda (private images) settings. Unmapping only helps
// when the image is mapped by a single frozen instance — which is always the
// case on Lambda, making the optimization markedly more effective there.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string setting;
  std::string function;
  double without_mib;
  double with_mib;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void Run(size_t slot, const char* name, ImageSharing sharing, const std::string& setting) {
  const WorkloadSpec* w = FindWorkload(name);
  const SingleFunctionResult without =
      RunSingleFunction(*w, 256 * kMiB, 100, sharing, /*unmap_libraries=*/false);
  const SingleFunctionResult with =
      RunSingleFunction(*w, 256 * kMiB, 100, sharing, /*unmap_libraries=*/true);
  g_rows[slot] = {setting, name, ToMiB(without.desiccant.uss), ToMiB(with.desiccant.uss)};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const char* name : {"sort", "fft"}) {
    size_t slot = cells.size();
    cells.push_back({std::string("abl_unmap/shared/") + name, [slot, name] {
                       Run(slot, name, ImageSharing::kExclusiveNode, "exclusive-node");
                     }});
    slot = cells.size();
    cells.push_back({std::string("abl_unmap/lambda/") + name, [slot, name] {
                       Run(slot, name, ImageSharing::kLambdaPrivate, "lambda-private");
                     }});
    slot = cells.size();
    cells.push_back({std::string("abl_unmap/multi/") + name, [slot, name] {
                       Run(slot, name, ImageSharing::kSharedNode, "shared-node");
                     }});
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"setting", "function", "desiccant_without_unmap_mib",
               "desiccant_with_unmap_mib", "extra_savings_mib"});
  for (const Row& row : g_rows) {
    table.AddRow({row.setting, row.function, Table::Fmt(row.without_mib),
                  Table::Fmt(row.with_mib), Table::Fmt(row.without_mib - row.with_mib)});
  }
  table.Print("Ablation: library unmap optimization (USS after reclaim)");
  return 0;
}
