// Ablation: the §4.6 shared-library unmap optimization, in the OpenWhisk
// (shared images) and Lambda (private images) settings. Unmapping only helps
// when the image is mapped by a single frozen instance — which is always the
// case on Lambda, making the optimization markedly more effective there.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  std::string setting;
  std::string function;
  double without_mib;
  double with_mib;
};

std::vector<Row> g_rows;

void Run(const char* name, ImageSharing sharing, const std::string& setting) {
  const WorkloadSpec* w = FindWorkload(name);
  const SingleFunctionResult without =
      RunSingleFunction(*w, 256 * kMiB, 100, sharing, /*unmap_libraries=*/false);
  const SingleFunctionResult with =
      RunSingleFunction(*w, 256 * kMiB, 100, sharing, /*unmap_libraries=*/true);
  g_rows.push_back({setting, name, ToMiB(without.desiccant.uss), ToMiB(with.desiccant.uss)});
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* name : {"sort", "fft"}) {
    RegisterExperiment(std::string("abl_unmap/shared/") + name, [name] {
      Run(name, ImageSharing::kExclusiveNode, "exclusive-node");
    });
    RegisterExperiment(std::string("abl_unmap/lambda/") + name, [name] {
      Run(name, ImageSharing::kLambdaPrivate, "lambda-private");
    });
    RegisterExperiment(std::string("abl_unmap/multi/") + name, [name] {
      Run(name, ImageSharing::kSharedNode, "shared-node");
    });
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"setting", "function", "desiccant_without_unmap_mib",
               "desiccant_with_unmap_mib", "extra_savings_mib"});
  for (const Row& row : g_rows) {
    table.AddRow({row.setting, row.function, Table::Fmt(row.without_mib),
                  Table::Fmt(row.with_mib), Table::Fmt(row.without_mib - row.with_mib)});
  }
  table.Print("Ablation: library unmap optimization (USS after reclaim)");
  return 0;
}
