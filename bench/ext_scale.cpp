// Extension: Azure-scale replay on the intra-cell parallel engine.
//
// A synthetic "Serverless in the Wild"-style population (thousands of
// functions drawn from per-class IAT/exec/memory distributions) replays on a
// ShardedCluster across a functions x nodes x racks x threads x memory-mode
// grid. Every (functions, nodes, mode) cell runs serially first — flat
// hierarchy, one thread — then at each requested rack count and worker
// count; the table reports simulation goodput/latency/memory alongside the
// harness's own wall-clock, the per-level routing cost (cell front router vs
// rack routers vs barrier stalls), the speedup over serial, and `det` —
// whether the run's per-node and aggregate fingerprints matched the serial
// flat baseline byte-for-byte (the engine's core guarantee, which the rack
// hierarchy must not perturb).
//
// Unlike the fig09/fig10 grids (parallel *across* cells), each cell here is
// parallel *inside*: cells run one at a time so a cell's workers own the
// whole host.
//
// Environment knobs (all optional):
//   DESICCANT_SCALE_FUNCTIONS    comma list of population sizes   (1000)
//   DESICCANT_SCALE_NODES        comma list of node counts        (16)
//   DESICCANT_SCALE_RACKS        comma list of rack counts        (1)
//   DESICCANT_SCALE_THREADS      comma list of worker counts      (1,host)
//   DESICCANT_SCALE_MODES        comma list of vanilla/desiccant  (both)
//   DESICCANT_SCALE_ROUTING      affinity|rr|least                (affinity)
//   DESICCANT_SCALE_FACTOR       IAT scale factor                 (8)
//   DESICCANT_SCALE_WARMUP_S     warmup window seconds            (30)
//   DESICCANT_SCALE_MEASURE_S    measured window seconds          (120)
//   DESICCANT_SCALE_CRASH_MTBF_S per-node crash MTBF seconds      (0 = off)
//   DESICCANT_SCALE_LOG_RETENTION full|counters                   (full)
//
// With DESICCANT_EVENT_PROFILE=1 the binary additionally prints the
// per-event-kind dispatch/cost table after the grid and exits non-zero if the
// per-kind counts do not sum to the total dispatched count (the CI
// event-profile smoke step relies on this reconciliation).
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  size_t functions = 0;
  size_t nodes = 0;
  size_t racks = 0;
  size_t threads = 0;            // effective (post-clamp) worker count
  size_t requested_threads = 0;  // what the knob asked for
  std::string mode;
  uint64_t arrivals = 0;
  double goodput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cold_frac = 0.0;
  double frozen_mib = 0.0;
  double released_mib = 0.0;
  double replay_ms = 0.0;
  double cell_route_ms = 0.0;
  double rack_route_ms = 0.0;
  double barrier_stall_ms = 0.0;
  double speedup = 1.0;
  bool det = true;
};

std::vector<size_t> ParseSizeList(const char* name, std::vector<size_t> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  std::vector<size_t> values;
  const char* p = env;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) {
      break;  // not a number: keep what parsed so far
    }
    values.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return values.empty() ? fallback : values;
}

double ParseDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return end == env ? fallback : v;
}

PlatformConfig::LogRetention ParseLogRetention() {
  const char* env = std::getenv("DESICCANT_SCALE_LOG_RETENTION");
  if (env != nullptr && std::string(env) == "counters") {
    return PlatformConfig::LogRetention::kCountersOnly;
  }
  return PlatformConfig::LogRetention::kFull;
}

RoutingPolicy ParseRouting() {
  const char* env = std::getenv("DESICCANT_SCALE_ROUTING");
  if (env == nullptr) {
    return RoutingPolicy::kAffinity;
  }
  const std::string s = env;
  if (s == "rr" || s == "round-robin") {
    return RoutingPolicy::kRoundRobin;
  }
  if (s == "least" || s == "least-loaded") {
    return RoutingPolicy::kLeastLoaded;
  }
  return RoutingPolicy::kAffinity;
}

std::vector<MemoryMode> ParseModes() {
  const char* env = std::getenv("DESICCANT_SCALE_MODES");
  std::vector<MemoryMode> modes;
  const std::string s = env == nullptr ? "vanilla,desiccant" : env;
  if (s.find("vanilla") != std::string::npos) {
    modes.push_back(MemoryMode::kVanilla);
  }
  if (s.find("desiccant") != std::string::npos) {
    modes.push_back(MemoryMode::kDesiccant);
  }
  if (modes.empty()) {
    modes.push_back(MemoryMode::kVanilla);
  }
  return modes;
}

// Dedups in place, keeping first occurrence, and makes sure `first` leads the
// list (the baseline shape every other cell is scored against).
std::vector<size_t> BaselineFirst(std::vector<size_t> values, size_t first) {
  if (std::find(values.begin(), values.end(), first) == values.end()) {
    values.insert(values.begin(), first);
  }
  std::vector<size_t> unique;
  for (const size_t v : values) {
    if (std::find(unique.begin(), unique.end(), v) == unique.end()) {
      unique.push_back(v);
    }
  }
  std::stable_partition(unique.begin(), unique.end(),
                        [first](size_t v) { return v == first; });
  return unique;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const std::vector<size_t> function_counts =
      ParseSizeList("DESICCANT_SCALE_FUNCTIONS", {1000});
  const std::vector<size_t> node_counts = ParseSizeList("DESICCANT_SCALE_NODES", {16});
  // Flat (1 rack) is the baseline hierarchy; run it first so every deeper
  // shape has a fingerprint to match.
  const std::vector<size_t> rack_counts =
      BaselineFirst(ParseSizeList("DESICCANT_SCALE_RACKS", {1}), 1);
  const std::vector<size_t> thread_counts = BaselineFirst(
      ParseSizeList("DESICCANT_SCALE_THREADS",
                    HostCores() > 1 ? std::vector<size_t>{1, HostCores()}
                                    : std::vector<size_t>{1}),
      1);
  const std::vector<MemoryMode> modes = ParseModes();
  const RoutingPolicy routing = ParseRouting();
  const double scale_factor = ParseDouble("DESICCANT_SCALE_FACTOR", 8.0);
  const double warmup_s = ParseDouble("DESICCANT_SCALE_WARMUP_S", 30.0);
  const double measure_s = ParseDouble("DESICCANT_SCALE_MEASURE_S", 120.0);
  const double crash_mtbf_s = ParseDouble("DESICCANT_SCALE_CRASH_MTBF_S", 0.0);
  const PlatformConfig::LogRetention log_retention = ParseLogRetention();
  const SimTime warmup_end = FromSeconds(warmup_s);
  const SimTime replay_end = warmup_end + FromSeconds(measure_s);

  std::vector<Row> rows;
  for (const size_t functions : function_counts) {
    // One population + one arrival stream per size: every node count, rack
    // count, mode, and thread count replays the identical input.
    const SyntheticPopulation population(PopulationConfig::AzureLike(functions, 20240601));
    const std::vector<TraceArrival> arrivals =
        population.GenerateArrivals(scale_factor, 0, replay_end);

    for (const size_t nodes : node_counts) {
      for (const MemoryMode mode : modes) {
        ShardedClusterConfig config;
        config.node_count = nodes;
        config.routing = routing;
        config.node.mode = mode;
        config.node.cpu_cores = 4.0;
        config.node.cache_capacity_bytes = 768 * kMiB;
        config.node.seed = 42;
        config.node.log_retention = log_retention;
        if (crash_mtbf_s > 0) {
          config.node.faults.node_crash_mtbf_seconds = crash_mtbf_s;
          config.node.faults.node_crash_horizon = replay_end;
        }

        double serial_ms = 0.0;
        uint64_t serial_fingerprint = 0;
        std::vector<uint64_t> serial_nodes;
        for (const size_t racks : rack_counts) {
          if (racks > nodes) {
            continue;  // a rack with no nodes is a config error
          }
          config.rack_count = racks;
          // Half the controller->node delay on the cell->rack hop once the
          // hierarchy is real (accounting only: delivery times are the full
          // network_delay either way, so fingerprints stay shape-invariant).
          config.inter_rack_delay_ms = racks > 1 ? ToMillis(config.network_delay) / 2 : 0.0;
          for (const size_t threads : thread_counts) {
            config.threads = threads;
            const ShardedReplayResult r =
                RunShardedReplay(population, arrivals, warmup_end, replay_end, config);
            const bool is_baseline = racks == rack_counts.front() && threads == 1;
            Row row;
            row.functions = functions;
            row.nodes = nodes;
            row.racks = r.racks;
            row.threads = r.threads;
            row.requested_threads = threads;
            row.mode = MemoryModeName(mode);
            row.arrivals = arrivals.size();
            row.goodput_rps = r.metrics.GoodputRps();
            row.p50_ms = r.metrics.latency_ms.Percentile(50);
            row.p99_ms = r.metrics.latency_ms.Percentile(99);
            row.cold_frac = r.metrics.ColdBootFraction();
            row.frozen_mib = ToMiB(r.frozen_bytes);
            row.released_mib = ToMiB(r.desiccant.bytes_released);
            row.replay_ms = r.replay_wall_ms;
            row.cell_route_ms = r.router.cell_route_ms;
            row.rack_route_ms = r.router.rack_route_ms;
            row.barrier_stall_ms = r.router.barrier_stall_ms;
            if (is_baseline) {
              serial_ms = r.replay_wall_ms;
              serial_fingerprint = r.aggregate_fingerprint;
              serial_nodes = r.node_fingerprints;
              row.speedup = 1.0;
              row.det = true;
            } else {
              row.speedup = r.replay_wall_ms > 0 ? serial_ms / r.replay_wall_ms : 0.0;
              // det covers both contracts at once: thread-count invariance
              // and hierarchy-shape invariance against the flat serial run.
              row.det = r.aggregate_fingerprint == serial_fingerprint &&
                        r.node_fingerprints == serial_nodes;
            }
            rows.push_back(row);

            char name[160];
            std::snprintf(name, sizeof(name), "ext_scale/f:%zu/n:%zu/%s/r:%zu/t:%zu",
                          functions, nodes, MemoryModeName(mode), r.racks, r.threads);
            const Row reg = rows.back();
            benchmark::RegisterBenchmark(name, [reg](benchmark::State& state) {
              for (auto _ : state) {
                state.SetIterationTime(reg.replay_ms / 1000.0);
              }
              state.counters["threads"] = static_cast<double>(reg.requested_threads);
              state.counters["effective_threads"] = static_cast<double>(reg.threads);
              state.counters["racks"] = static_cast<double>(reg.racks);
              state.counters["speedup"] = reg.speedup;
              state.counters["det"] = reg.det ? 1.0 : 0.0;
              state.counters["goodput_rps"] = reg.goodput_rps;
              state.counters["cell_route_ms"] = reg.cell_route_ms;
              state.counters["rack_route_ms"] = reg.rack_route_ms;
              state.counters["barrier_stall_ms"] = reg.barrier_stall_ms;
              state.counters["host_cores"] = static_cast<double>(HostCores());
            })->Iterations(1)->UseManualTime()->Unit(benchmark::kMillisecond);
          }
        }
      }
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"functions", "nodes", "racks", "threads", "mode", "arrivals",
               "goodput_rps", "p50_ms", "p99_ms", "cold_frac", "frozen_mib",
               "released_mib", "replay_ms", "cell_route_ms", "rack_route_ms",
               "stall_ms", "speedup", "det"});
  for (const Row& row : rows) {
    table.AddRow({std::to_string(row.functions), std::to_string(row.nodes),
                  std::to_string(row.racks), std::to_string(row.threads), row.mode,
                  std::to_string(row.arrivals), Table::Fmt(row.goodput_rps),
                  Table::Fmt(row.p50_ms), Table::Fmt(row.p99_ms),
                  Table::Fmt(row.cold_frac, 3), Table::Fmt(row.frozen_mib),
                  Table::Fmt(row.released_mib), Table::Fmt(row.replay_ms),
                  Table::Fmt(row.cell_route_ms), Table::Fmt(row.rack_route_ms),
                  Table::Fmt(row.barrier_stall_ms), Table::Fmt(row.speedup),
                  row.det ? "yes" : "NO"});
  }
  table.Print(
      "Extension: sharded-cluster population replay (functions x nodes x racks x threads)");
  // A det=0 cell is a determinism regression, not a data point: fail the
  // process so CI smokes (which run the binary without bench_scale.sh's jq
  // gate) still catch it.
  for (const Row& row : rows) {
    if (!row.det) {
      std::fprintf(stderr, "ext_scale: fingerprint divergence from the serial flat baseline\n");
      return 1;
    }
  }
  if (EventProfile::Enabled()) {
    EventProfile::PrintTable(stdout);
    // Reconciliation: every dispatched event must be attributed to exactly
    // one kind. A mismatch means RunNext grew a path that skips attribution.
    const uint64_t attributed = EventProfile::AttributedTotal();
    const uint64_t dispatched = EventProfile::Dispatched();
    if (attributed != dispatched) {
      std::fprintf(stderr,
                   "ext_scale: event-profile counters do not reconcile "
                   "(attributed %llu != dispatched %llu)\n",
                   static_cast<unsigned long long>(attributed),
                   static_cast<unsigned long long>(dispatched));
      return 1;
    }
  }
  return 0;
}
