// Extension: the trace replay under injected faults.
//
// Three fault intensities (none / light / heavy) against the vanilla and
// Desiccant memory managers, single node at SF 15. The point of the table is
// the outcome taxonomy: under pressure the interesting number is no longer
// raw throughput but goodput (first-try completions per second) and the
// success fraction — Desiccant's larger effective cache keeps more requests
// on the warm path, so fewer of them are exposed to boot failures and the
// OOM killer in the first place.
//
// Two extra columns audit the fault layer itself: `replay` is 1 iff a second
// run with the same seed and plan produced a byte-identical metrics
// fingerprint, and the `none` rows double as the overhead baseline —
// scripts/bench_faults.sh tracks their wall time in BENCH_faults.json to keep
// the inert fault layer under 2% on the fig09 path.
//
// A second table runs a 3-node cluster with invoker crashes: a crashed node
// drains its cache and fails in-flight activations over to its peers, so
// crashes show up as failovers + retried-then-ok completions, not losses.
#include "bench/bench_util.h"
#include "src/faas/cluster.h"

namespace {

using namespace desiccant;

struct Level {
  std::string name;
  FaultPlan plan;
};

std::vector<Level> Levels() {
  std::vector<Level> levels;
  levels.push_back({"none", FaultPlan{}});

  FaultPlan light;
  light.invocation_timeout = 2 * kSecond;
  light.boot_failure_prob = 0.02;
  light.reclaim_abort_prob = 0.05;
  levels.push_back({"light", light});

  // The cgroup sits above the cache capacity (1536 MiB): steady-state frozen
  // memory fits, and the killer only fires on running-instance spikes — where
  // the managers genuinely differ. A cap below the cache just shoots every
  // frozen instance before Desiccant can touch it, and both modes collapse to
  // the same thrash.
  FaultPlan heavy;
  heavy.invocation_timeout = 1 * kSecond;
  heavy.boot_failure_prob = 0.10;
  heavy.reclaim_abort_prob = 0.25;
  heavy.node_memory_bytes = 2048 * kMiB;
  levels.push_back({"heavy", heavy});
  return levels;
}

struct Row {
  std::string level;
  std::string mode;
  PlatformMetrics m;
  bool replay_identical = false;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;
std::vector<Row> g_cluster_rows;

void RunNode(size_t slot, const Level& level, MemoryMode mode) {
  ReplayConfig config;
  config.mode = mode;
  config.faults = level.plan;
  const ReplayResult first = RunReplay(config);
  const ReplayResult second = RunReplay(config);
  g_rows[slot] = {level.name, MemoryModeName(mode), first.metrics,
                  first.metrics.Fingerprint() == second.metrics.Fingerprint()};
}

PlatformMetrics RunCluster(MemoryMode mode) {
  ClusterConfig config;
  config.node_count = 3;
  config.routing = RoutingPolicy::kLeastLoaded;
  config.node.mode = mode;
  config.node.cache_capacity_bytes = 512 * kMiB;
  config.node.cpu_cores = 1.0;
  config.node.faults.node_crash_mtbf_seconds = 60.0;
  config.node.faults.node_restart_delay = 3 * kSecond;
  config.node.faults.node_crash_horizon = 240 * kSecond;

  Cluster cluster(config);
  std::vector<std::unique_ptr<DesiccantManager>> managers;
  if (mode == MemoryMode::kDesiccant) {
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      managers.push_back(
          std::make_unique<DesiccantManager>(&cluster.node(i), DesiccantConfig{}));
    }
  }

  std::vector<const WorkloadSpec*> workloads;
  for (const WorkloadSpec& w : CoarseSuite()) {
    workloads.push_back(&w);
  }
  TraceGenerator generator(1234);
  const auto trace_functions = generator.BuildSuiteTrace(workloads);
  const SimTime warmup_end = FromSeconds(60);
  const SimTime replay_end = warmup_end + FromSeconds(180);
  for (const TraceArrival& a : generator.Generate(trace_functions, 10.0, 0, warmup_end)) {
    cluster.Submit(a.workload, a.time);
  }
  for (const TraceArrival& a :
       generator.Generate(trace_functions, 15.0, warmup_end, replay_end)) {
    cluster.Submit(a.workload, a.time);
  }
  cluster.RunUntil(warmup_end);
  cluster.BeginMeasurement();
  cluster.RunUntil(replay_end);
  return cluster.AggregateMetrics();
}

void RunClusterPair(size_t slot, MemoryMode mode) {
  const PlatformMetrics first = RunCluster(mode);
  const PlatformMetrics second = RunCluster(mode);
  g_cluster_rows[slot] = {"crashes", MemoryModeName(mode), first,
                          first.Fingerprint() == second.Fingerprint()};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const Level& level : Levels()) {
    for (const MemoryMode mode : {MemoryMode::kVanilla, MemoryMode::kDesiccant}) {
      const size_t slot = cells.size();
      cells.push_back(
          {std::string("ext_faults/") + level.name + "/" + MemoryModeName(mode),
           [slot, level, mode] { RunNode(slot, level, mode); }});
    }
  }
  g_rows.resize(cells.size());
  const size_t cluster_base = cells.size();
  for (const MemoryMode mode : {MemoryMode::kVanilla, MemoryMode::kDesiccant}) {
    const size_t slot = cells.size() - cluster_base;
    cells.push_back({std::string("ext_faults/cluster_crashes/") + MemoryModeName(mode),
                     [slot, mode] { RunClusterPair(slot, mode); }});
  }
  g_cluster_rows.resize(cells.size() - cluster_base);
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"faults", "mode", "ok", "retried_ok", "failed", "dropped", "timeouts",
               "boot_fail", "oom_frozen", "oom_running", "reclaim_aborts", "goodput_rps",
               "throughput_rps", "success", "replay"});
  for (const Row& row : g_rows) {
    table.AddRow({row.level, row.mode, std::to_string(row.m.requests_completed),
                  std::to_string(row.m.requests_retried_ok),
                  std::to_string(row.m.requests_failed),
                  std::to_string(row.m.requests_dropped),
                  std::to_string(row.m.invocation_timeouts),
                  std::to_string(row.m.boot_failures),
                  std::to_string(row.m.oom_kills_frozen),
                  std::to_string(row.m.oom_kills_running),
                  std::to_string(row.m.reclaim_aborts), Table::Fmt(row.m.GoodputRps()),
                  Table::Fmt(row.m.ThroughputRps()), Table::Fmt(row.m.SuccessFraction(), 4),
                  row.replay_identical ? "1" : "0"});
  }
  table.Print("Extension: fault injection at SF 15, outcome taxonomy (single node)");

  Table cluster_table({"faults", "mode", "ok", "retried_ok", "failed", "dropped",
                       "node_crashes", "failovers", "goodput_rps", "throughput_rps",
                       "success", "replay"});
  for (const Row& row : g_cluster_rows) {
    cluster_table.AddRow(
        {row.level, row.mode, std::to_string(row.m.requests_completed),
         std::to_string(row.m.requests_retried_ok), std::to_string(row.m.requests_failed),
         std::to_string(row.m.requests_dropped), std::to_string(row.m.node_crashes),
         std::to_string(row.m.failovers), Table::Fmt(row.m.GoodputRps()),
         Table::Fmt(row.m.ThroughputRps()), Table::Fmt(row.m.SuccessFraction(), 4),
         row.replay_identical ? "1" : "0"});
  }
  cluster_table.Print(
      "Extension: 3-node cluster with invoker crashes (MTBF 60 s, restart 3 s, SF 15)");
  return 0;
}
