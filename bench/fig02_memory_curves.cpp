// Figure 2: memory-consumption curves for two representative functions
// (§3.2): file-hash (Java) and fft (JavaScript), vanilla vs eager vs ideal,
// over 100 invocations. Shows that eager GC helps Java by triggering the
// resize phase but barely helps fft, whose young generation never shrinks.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct CurvePoint {
  int iteration;
  double vanilla_mib;
  double eager_mib;
  double ideal_mib;
};

std::vector<CurvePoint> g_filehash;
std::vector<CurvePoint> g_fft;

void RunCurve(const char* name, std::vector<CurvePoint>* out) {
  const WorkloadSpec* w = FindWorkload(name);
  StudyConfig vanilla_config;
  StudyConfig eager_config;
  eager_config.mode = StudyMode::kEager;
  ChainStudy vanilla(*w, vanilla_config);
  ChainStudy eager(*w, eager_config);
  for (int i = 1; i <= 100; ++i) {
    const ChainSample v = vanilla.Step();
    const ChainSample e = eager.Step();
    if (i == 1 || i % 5 == 0) {
      out->push_back({i, ToMiB(v.uss), ToMiB(e.uss), ToMiB(v.ideal_uss)});
    }
  }
}

void PrintCurve(const char* title, const std::vector<CurvePoint>& curve) {
  Table table({"iteration", "vanilla_mib", "eager_mib", "ideal_mib"});
  for (const CurvePoint& p : curve) {
    table.AddRow({std::to_string(p.iteration), Table::Fmt(p.vanilla_mib),
                  Table::Fmt(p.eager_mib), Table::Fmt(p.ideal_mib)});
  }
  table.Print(title);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterExperiment("fig02/file-hash", [] { RunCurve("file-hash", &g_filehash); });
  RegisterExperiment("fig02/fft", [] { RunCurve("fft", &g_fft); });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintCurve("Figure 2a: memory curve, file-hash (Java)", g_filehash);
  PrintCurve("Figure 2b: memory curve, fft (JavaScript)", g_fft);
  return 0;
}
