// Extension (§5.4 discussion, §7): Desiccant across GC algorithms.
//
// The paper studies the serial GC because Lambda always uses it, and argues
// Desiccant extends to G1 (same tracing structure, same live-bytes and
// free-region queries) and that platforms could grant parallel collectors to
// instances with more CPUs. This bench runs Java workloads on the serial
// collector and on the G1-style regional collector, before/after Desiccant's
// reclaim, plus a GC-thread sweep of the reclamation cost.
#include "bench/bench_util.h"
#include "src/hotspot/g1_runtime.h"
#include "src/hotspot/hotspot_runtime.h"

namespace {

using namespace desiccant;

struct Row {
  std::string function;
  std::string collector;
  double vanilla_mib;
  double desiccant_mib;
  double live_mib;
};

std::vector<Row> g_rows;
std::vector<std::pair<uint32_t, double>> g_thread_sweep;  // threads -> reclaim ms

// A minimal single-instance harness that works with any ManagedRuntime —
// the G1 runtime is not wired into the platform's default factory.
struct MiniInstance {
  explicit MiniInstance(std::unique_ptr<ManagedRuntime> (*factory)(VirtualAddressSpace*,
                                                                   const SimClock*,
                                                                   SharedFileRegistry*),
                        const StageSpec& spec)
      : vas(&registry), runtime(factory(&vas, &clock, &registry)), program(spec, 99) {}

  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas;
  std::unique_ptr<ManagedRuntime> runtime;
  FunctionProgram program;
};

std::unique_ptr<ManagedRuntime> MakeSerial(VirtualAddressSpace* vas, const SimClock* clock,
                                           SharedFileRegistry* registry) {
  return std::make_unique<HotSpotRuntime>(vas, clock,
                                          HotSpotConfig::ForInstanceBudget(256 * kMiB),
                                          registry);
}

std::unique_ptr<ManagedRuntime> MakeG1(VirtualAddressSpace* vas, const SimClock* clock,
                                       SharedFileRegistry* registry) {
  return std::make_unique<G1Runtime>(vas, clock, G1Config::ForInstanceBudget(256 * kMiB),
                                     registry);
}

void RunCollector(const char* function, const char* collector,
                  std::unique_ptr<ManagedRuntime> (*factory)(VirtualAddressSpace*,
                                                             const SimClock*,
                                                             SharedFileRegistry*)) {
  const WorkloadSpec* w = FindWorkload(function);
  MiniInstance instance(factory, w->stages[0]);
  for (int i = 0; i < 100; ++i) {
    // The downstream stage consumes any chain carry before the next run.
    if (instance.program.has_carry()) {
      instance.program.ConsumeCarry(*instance.runtime);
    }
    instance.program.Invoke(*instance.runtime, instance.clock);
  }
  // Compare the collectors on their own turf: resident bytes of the heap.
  const double vanilla = ToMiB(instance.runtime->HeapResidentBytes());
  instance.runtime->Reclaim({});
  g_rows.push_back({function, collector, vanilla,
                    ToMiB(instance.runtime->HeapResidentBytes()),
                    ToMiB(instance.runtime->ExactLiveBytes())});
}

void RunThreadSweep(uint32_t threads) {
  const WorkloadSpec* w = FindWorkload("image-resize");
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  G1Config config = G1Config::ForInstanceBudget(256 * kMiB);
  config.gc_threads = threads;
  G1Runtime runtime(&vas, &clock, config, &registry);
  FunctionProgram program(w->stages[0], 99);
  for (int i = 0; i < 100; ++i) {
    if (program.has_carry()) {
      program.ConsumeCarry(runtime);
    }
    program.Invoke(runtime, clock);
  }
  const ReclaimResult result = runtime.Reclaim({});
  g_thread_sweep.emplace_back(threads, ToMillis(result.cpu_time));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* function : {"sort", "file-hash", "image-resize", "hotel-searching"}) {
    RegisterExperiment(std::string("ext_gc/serial/") + function,
                       [function] { RunCollector(function, "serial", MakeSerial); });
    RegisterExperiment(std::string("ext_gc/g1/") + function,
                       [function] { RunCollector(function, "g1", MakeG1); });
  }
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    RegisterExperiment("ext_gc/threads:" + std::to_string(threads),
                       [threads] { RunThreadSweep(threads); });
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"function", "collector", "vanilla_heap_mib", "desiccant_heap_mib", "live_mib",
               "reduction"});
  for (const Row& row : g_rows) {
    table.AddRow({row.function, row.collector, Table::Fmt(row.vanilla_mib),
                  Table::Fmt(row.desiccant_mib), Table::Fmt(row.live_mib),
                  Table::Fmt(row.vanilla_mib / row.desiccant_mib)});
  }
  table.Print("Extension: Desiccant across GC algorithms (serial vs G1, 100 executions)");

  Table sweep({"gc_threads", "reclaim_cpu_ms"});
  for (const auto& [threads, ms] : g_thread_sweep) {
    sweep.AddRow({std::to_string(threads), Table::Fmt(ms)});
  }
  sweep.Print("Extension: parallel reclamation (G1, image-resize)");
  return 0;
}
