// Figure 12: memory consumption under different memory budgets (§5.5).
// (a) Java averages, (b) JavaScript averages, (c) clock — stable regardless
// of the budget, (d) fft — vanilla/eager balloon with the young-generation
// cap while Desiccant stays flat (up to 6.72x at 1 GiB in the paper).
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

constexpr uint64_t kBudgets[] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

struct Row {
  uint64_t budget = 0;
  std::string key;  // "java", "javascript", "clock", "fft"
  double vanilla_mib = 0.0;
  double eager_mib = 0.0;
  double desiccant_mib = 0.0;
};

// One pre-sized slot per grid cell so cells can run concurrently.
std::vector<Row> g_rows;

void RunLanguageAverage(size_t slot, uint64_t budget, Language language) {
  double v = 0.0;
  double e = 0.0;
  double d = 0.0;
  int count = 0;
  for (const WorkloadSpec* w : SuiteByLanguage(language)) {
    const SingleFunctionResult r = RunSingleFunction(*w, budget);
    v += ToMiB(r.vanilla.uss);
    e += ToMiB(r.eager.uss);
    d += ToMiB(r.desiccant.uss);
    ++count;
  }
  g_rows[slot] = {budget, LanguageName(language), v / count, e / count, d / count};
}

void RunFunction(size_t slot, uint64_t budget, const char* name) {
  const SingleFunctionResult r = RunSingleFunction(*FindWorkload(name), budget);
  g_rows[slot] = {budget, name, ToMiB(r.vanilla.uss), ToMiB(r.eager.uss),
                  ToMiB(r.desiccant.uss)};
}

void PrintKey(const char* title, const std::string& key) {
  Table table({"budget_mib", "vanilla_mib", "eager_mib", "desiccant_mib",
               "reduction_vs_vanilla"});
  for (const Row& row : g_rows) {
    if (row.key != key) {
      continue;
    }
    table.AddRow({std::to_string(row.budget / kMiB), Table::Fmt(row.vanilla_mib),
                  Table::Fmt(row.eager_mib), Table::Fmt(row.desiccant_mib),
                  Table::Fmt(row.vanilla_mib / row.desiccant_mib)});
  }
  table.Print(title);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<ExperimentCell> cells;
  for (const uint64_t budget : kBudgets) {
    size_t slot = cells.size();
    cells.push_back({"fig12/java/" + std::to_string(budget / kMiB),
                     [slot, budget] { RunLanguageAverage(slot, budget, Language::kJava); }});
    slot = cells.size();
    cells.push_back(
        {"fig12/javascript/" + std::to_string(budget / kMiB),
         [slot, budget] { RunLanguageAverage(slot, budget, Language::kJavaScript); }});
    slot = cells.size();
    cells.push_back({"fig12/clock/" + std::to_string(budget / kMiB),
                     [slot, budget] { RunFunction(slot, budget, "clock"); }});
    slot = cells.size();
    cells.push_back({"fig12/fft/" + std::to_string(budget / kMiB),
                     [slot, budget] { RunFunction(slot, budget, "fft"); }});
  }
  g_rows.resize(cells.size());
  RunExperimentGrid(cells);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  PrintKey("Figure 12a: Java average memory vs budget", "java");
  PrintKey("Figure 12b: JavaScript average memory vs budget", "javascript");
  PrintKey("Figure 12c: clock vs budget (stable)", "clock");
  PrintKey("Figure 12d: fft vs budget (young generation cap scales)", "fft");
  return 0;
}
