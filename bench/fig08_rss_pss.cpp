// Figure 8: per-instance RSS and PSS improvement (§5.2) as the number of
// concurrent instances of the same function (fft) grows on one node.
// With one container, both RSS and PSS improve ~4x thanks to in-heap
// reclamation plus the library-unmap optimization; as instances multiply,
// PSS approaches USS because the images are shared.
#include "bench/bench_util.h"

namespace {

using namespace desiccant;

struct Row {
  int instances;
  double rss_improvement;
  double pss_improvement;
  double uss_improvement;
};

std::vector<Row> g_rows;

// Runs `n` fft instances co-located on one node (one shared registry), 100
// invocations each, and compares per-instance RSS/PSS before and after
// Desiccant's reclaim (with the unmap optimization).
void RunWithInstances(int n) {
  const WorkloadSpec* w = FindWorkload("fft");
  SharedFileRegistry registry;
  StudyConfig config;
  config.sharing = ImageSharing::kExclusiveNode;

  std::vector<std::unique_ptr<ChainStudy>> studies;
  for (int i = 0; i < n; ++i) {
    StudyConfig c = config;
    c.seed = 7 + i;
    studies.push_back(std::make_unique<ChainStudy>(*w, c, &registry));
  }
  for (int iter = 0; iter < 100; ++iter) {
    for (auto& study : studies) {
      study->Step();
    }
  }
  ChainSample vanilla{};
  for (auto& study : studies) {
    const ChainSample s = study->Sample();
    vanilla.rss += s.rss;
    vanilla.pss += s.pss;
    vanilla.uss += s.uss;
  }
  ChainSample reclaimed{};
  for (auto& study : studies) {
    study->ReclaimAll(ReclaimOptions{}, /*unmap_idle_libraries=*/true);
    const ChainSample s = study->Sample();
    reclaimed.rss += s.rss;
    reclaimed.pss += s.pss;
    reclaimed.uss += s.uss;
  }
  g_rows.push_back({n, static_cast<double>(vanilla.rss) / reclaimed.rss,
                    vanilla.pss / reclaimed.pss,
                    static_cast<double>(vanilla.uss) / reclaimed.uss});
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int n : {1, 2, 4, 8}) {
    RegisterExperiment("fig08/instances:" + std::to_string(n), [n] { RunWithInstances(n); });
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Table table({"instances", "rss_improvement", "pss_improvement", "uss_improvement"});
  for (const Row& row : g_rows) {
    table.AddRow({std::to_string(row.instances), Table::Fmt(row.rss_improvement),
                  Table::Fmt(row.pss_improvement), Table::Fmt(row.uss_improvement)});
  }
  table.Print("Figure 8: per-instance RSS/PSS improvement (fft, Desiccant vs vanilla)");
  return 0;
}
