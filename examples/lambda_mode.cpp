// Lambda mode (§5.4): no library sharing between instances.
//
// On AWS Lambda every instance has private runtime images, so their pages
// count toward USS and Desiccant's §4.6 unmap optimization becomes more
// effective. This example compares the same function under OpenWhisk-style
// shared images and Lambda-style private images.
//
//   $ ./examples/lambda_mode [workload]
#include <cstdio>

#include "src/base/table.h"
#include "src/faas/single_study.h"
#include "src/workloads/function_spec.h"

int main(int argc, char** argv) {
  using namespace desiccant;
  const char* name = argc > 1 ? argv[1] : "sort";
  const WorkloadSpec* workload = FindWorkload(name);
  if (workload == nullptr) {
    std::printf("unknown workload %s\n", name);
    return 1;
  }

  Table table({"environment", "vanilla_mib", "desiccant_mib", "improvement"});
  for (ImageSharing sharing : {ImageSharing::kSharedNode, ImageSharing::kLambdaPrivate}) {
    StudyConfig config;
    config.sharing = sharing;

    ChainStudy vanilla(*workload, config);
    ChainStudy desiccant(*workload, config);
    ChainSample vanilla_sample;
    for (int i = 0; i < 100; ++i) {
      vanilla_sample = vanilla.Step();
      desiccant.Step();
    }
    desiccant.ReclaimAll();
    const ChainSample reclaimed = desiccant.Sample();

    table.AddRow({sharing == ImageSharing::kSharedNode ? "openwhisk (shared images)"
                                                       : "lambda (private images)",
                  Table::Fmt(ToMiB(vanilla_sample.uss)), Table::Fmt(ToMiB(reclaimed.uss)),
                  Table::Fmt(static_cast<double>(vanilla_sample.uss) /
                             static_cast<double>(reclaimed.uss))});
  }
  table.Print(std::string("lambda mode: ") + name + " after 100 invocations + reclaim");
  return 0;
}
