// Azure-style trace replay (§5.3): vanilla vs. eager vs. Desiccant.
//
// Replays a synthetic Azure-2019-style arrival trace over the Table 1 suite
// against the OpenWhisk-style platform (2 GiB instance cache, 256 MiB
// instances) and reports cold boots, throughput, CPU and tail latency.
//
//   $ ./examples/trace_replay [scale_factor]
#include <cstdio>
#include <cstdlib>

#include "src/base/table.h"
#include "src/core/desiccant_manager.h"
#include "src/faas/platform.h"
#include "src/trace/azure_trace.h"
#include "src/workloads/function_spec.h"

namespace {

using namespace desiccant;

struct ReplayResult {
  PlatformMetrics metrics;
  double cores = 0.0;
};

ReplayResult Replay(MemoryMode mode, double scale_factor) {
  PlatformConfig config;
  config.mode = mode;
  Platform platform(config);

  std::unique_ptr<DesiccantManager> manager;
  if (mode == MemoryMode::kDesiccant) {
    manager = std::make_unique<DesiccantManager>(&platform, DesiccantConfig{});
  }

  // The suite, with coarser objects to bound simulation cost.
  static std::vector<WorkloadSpec> coarse;
  if (coarse.empty()) {
    for (const WorkloadSpec& w : WorkloadSuite()) {
      coarse.push_back(CoarsenObjects(w, 4));
    }
  }
  std::vector<const WorkloadSpec*> workloads;
  for (const WorkloadSpec& w : coarse) {
    workloads.push_back(&w);
  }

  TraceGenerator generator(1234);
  const auto trace_functions = generator.BuildSuiteTrace(workloads);

  // 60 s warm-up at scale factor 15, then 180 s measured at `scale_factor`.
  const SimTime warmup_end = FromSeconds(60);
  const SimTime replay_end = warmup_end + FromSeconds(180);
  for (const TraceArrival& a : generator.Generate(trace_functions, 15.0, 0, warmup_end)) {
    platform.Submit(a.workload, a.time);
  }
  for (const TraceArrival& a :
       generator.Generate(trace_functions, scale_factor, warmup_end, replay_end)) {
    platform.Submit(a.workload, a.time);
  }

  platform.RunUntil(warmup_end);
  platform.BeginMeasurement();
  platform.RunUntil(replay_end);
  ReplayResult result;
  result.metrics = platform.FinishMeasurement();
  result.cores = config.cpu_cores;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale_factor = argc > 1 ? std::atof(argv[1]) : 15.0;

  Table table({"mode", "cold_boots_per_s", "throughput_rps", "cpu_util", "p50_ms", "p90_ms",
               "p95_ms", "p99_ms", "evictions", "reclaims"});
  for (MemoryMode mode :
       {MemoryMode::kVanilla, MemoryMode::kEager, MemoryMode::kDesiccant}) {
    const ReplayResult r = Replay(mode, scale_factor);
    table.AddRow({MemoryModeName(mode), Table::Fmt(r.metrics.ColdBootsPerSecond(), 3),
                  Table::Fmt(r.metrics.ThroughputRps()),
                  Table::Fmt(r.metrics.CpuUtilization(r.cores), 3),
                  Table::Fmt(r.metrics.latency_ms.Percentile(50)),
                  Table::Fmt(r.metrics.latency_ms.Percentile(90)),
                  Table::Fmt(r.metrics.latency_ms.Percentile(95)),
                  Table::Fmt(r.metrics.latency_ms.Percentile(99)),
                  std::to_string(r.metrics.evictions), std::to_string(r.metrics.reclaims)});
  }
  std::printf("scale factor: %.1f\n", scale_factor);
  table.Print("trace replay (Azure-style, 180 s window)");
  return 0;
}
