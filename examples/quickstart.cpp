// Quickstart: the frozen-garbage effect on two representative functions.
//
// Runs file-hash (Java) and fft (JavaScript) 100 times inside a single
// instance each, under the vanilla and eager-GC configurations, then applies
// Desiccant's reclaim — reproducing the §3.2 observation that eager GC is not
// enough and the §5.2 result that reclaim gets within a few percent of ideal.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/base/table.h"
#include "src/faas/single_study.h"
#include "src/workloads/function_spec.h"

namespace {

using namespace desiccant;

void RunOne(const char* name) {
  const WorkloadSpec* workload = FindWorkload(name);
  if (workload == nullptr) {
    std::printf("unknown workload %s\n", name);
    return;
  }

  StudyConfig vanilla_config;
  StudyConfig eager_config;
  eager_config.mode = StudyMode::kEager;

  ChainStudy vanilla(*workload, vanilla_config);
  ChainStudy eager(*workload, eager_config);

  ChainSample vanilla_sample;
  ChainSample eager_sample;
  for (int i = 0; i < 100; ++i) {
    vanilla_sample = vanilla.Step();
    eager_sample = eager.Step();
  }

  // Desiccant: reclaim the frozen (vanilla-run) instance.
  ChainStudy desiccant(*workload, vanilla_config);
  ChainSample desiccant_sample;
  for (int i = 0; i < 100; ++i) {
    desiccant_sample = desiccant.Step();
  }
  desiccant.ReclaimAll();
  desiccant_sample = desiccant.Sample();

  Table table({"config", "uss_mib", "ideal_mib", "ratio_vs_ideal"});
  auto row = [&table](const char* config, const ChainSample& s) {
    table.AddRow({config, Table::Fmt(ToMiB(s.uss)), Table::Fmt(ToMiB(s.ideal_uss)),
                  Table::Fmt(static_cast<double>(s.uss) /
                             static_cast<double>(s.ideal_uss))});
  };
  row("vanilla", vanilla_sample);
  row("eager", eager_sample);
  row("desiccant", desiccant_sample);
  table.Print(std::string("quickstart: ") + name + " after 100 invocations");
}

}  // namespace

int main() {
  RunOne("file-hash");
  RunOne("fft");
  return 0;
}
