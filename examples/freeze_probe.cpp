// Freeze probe: the paper's §2.1 methodology for detecting freeze semantics.
//
// The authors uploaded a function whose *foreground* part finishes quickly
// while a *background* thread keeps sending heartbeats. On Lambda they saw
// heartbeats continue for ~100 ms after the foreground returned, then stop —
// and resume when the next invocation hit the same instance. That proves the
// instance is frozen (not destroyed) between invocations.
//
// This example replays that probe against the simulated platform: it samples
// the instance's state on a fine grid and prints the heartbeat timeline.
//
//   $ ./examples/freeze_probe
#include <cstdio>

#include "src/base/table.h"
#include "src/faas/platform.h"
#include "src/workloads/function_spec.h"

int main() {
  using namespace desiccant;

  PlatformConfig config;
  config.freeze_grace = 100 * kMillisecond;  // what the paper measured on Lambda
  Platform platform(config);

  const WorkloadSpec* workload = FindWorkload("time");
  platform.Submit(workload, kSecond);
  platform.Submit(workload, 3 * kSecond);  // the probe's second invocation

  // Sample instance state every 20 ms (the background heartbeat period).
  Table table({"t_ms", "instance_state", "heartbeat"});
  InstanceState last_state = InstanceState::kBooting;
  for (SimTime t = 900 * kMillisecond; t <= 3500 * kMillisecond; t += 20 * kMillisecond) {
    platform.RunUntil(t);
    InstanceState state = InstanceState::kBooting;
    const bool exists = platform.live_instance_count() > 0;
    if (exists) {
      state = platform.FrozenInstances().empty() ? InstanceState::kRunning
                                                 : InstanceState::kFrozen;
    }
    const char* name = !exists             ? "(none)"
                       : state == InstanceState::kFrozen ? "frozen"
                                                         : "running";
    // A heartbeat goes out iff the background thread can be scheduled — i.e.
    // the instance exists and is not paused.
    const char* heartbeat = exists && state != InstanceState::kFrozen ? "*" : "";
    if (state != last_state || heartbeat[0] != '\0') {
      table.AddRow({Table::Fmt(ToMillis(t), 0), name, heartbeat});
    }
    last_state = state;
  }
  table.Print("freeze probe: heartbeats continue ~100 ms past the foreground exit, stop "
              "while frozen, resume on the next invocation (cf. paper §2.1)");

  const auto records = platform.RecentActivations();
  Table activations({"request", "function", "start_type", "arrival_ms", "completion_ms"});
  for (const ActivationRecord& r : records) {
    activations.AddRow({std::to_string(r.request_id), r.function_key,
                        r.start == ActivationRecord::Start::kCold   ? "cold"
                        : r.start == ActivationRecord::Start::kWarm ? "warm (same instance!)"
                                                                    : "prewarm",
                        Table::Fmt(ToMillis(r.arrival), 0),
                        Table::Fmt(ToMillis(r.completion), 0)});
  }
  activations.Print("activation records: the second request reuses the frozen instance");
  return 0;
}
