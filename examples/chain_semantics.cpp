// Chain semantics: why eager GC backfires on mapreduce (§5.2).
//
// The mapper's intermediate output must stay live until the reducer has read
// it, so a GC at the mapper's exit point cannot reclaim it — eager GC ends up
// *costlier* than doing nothing, while Desiccant reclaims only frozen
// instances whose carry has already been consumed.
//
//   $ ./examples/chain_semantics
#include <cstdio>

#include "src/base/table.h"
#include "src/faas/single_study.h"
#include "src/workloads/function_spec.h"

int main() {
  using namespace desiccant;
  const WorkloadSpec* mapreduce = FindWorkload("mapreduce");

  StudyConfig vanilla_config;
  StudyConfig eager_config;
  eager_config.mode = StudyMode::kEager;

  ChainStudy vanilla(*mapreduce, vanilla_config);
  ChainStudy eager(*mapreduce, eager_config);
  ChainStudy desiccant(*mapreduce, vanilla_config);

  Table curve({"iteration", "vanilla_mib", "eager_mib", "desiccant_pre_mib"});
  ChainSample v;
  ChainSample e;
  ChainSample d;
  for (int i = 0; i < 100; ++i) {
    v = vanilla.Step();
    e = eager.Step();
    d = desiccant.Step();
    if (i % 20 == 19 || i == 0) {
      curve.AddRow({std::to_string(i + 1), Table::Fmt(ToMiB(v.uss)), Table::Fmt(ToMiB(e.uss)),
                    Table::Fmt(ToMiB(d.uss))});
    }
  }
  curve.Print("mapreduce chain: accumulated USS over 100 chain invocations");

  // At this point the reducer has consumed the mapper's last carry... except
  // the final iteration's: consume it (the chain completed), then reclaim.
  auto& instances = desiccant.instances();
  if (instances.front()->program().has_carry()) {
    instances.front()->program().ConsumeCarry(instances.front()->runtime());
  }
  desiccant.ReclaimAll();
  const ChainSample after = desiccant.Sample();

  Table summary({"config", "uss_mib"});
  summary.AddRow({"vanilla", Table::Fmt(ToMiB(v.uss))});
  summary.AddRow({"eager", Table::Fmt(ToMiB(e.uss))});
  summary.AddRow({"desiccant (reclaimed)", Table::Fmt(ToMiB(after.uss))});
  summary.AddRow({"ideal", Table::Fmt(ToMiB(after.ideal_uss))});
  summary.Print("mapreduce chain: final memory");

  std::printf("Note: the eager curve sits at or above vanilla early on because the mapper's\n"
              "intermediate data is live at its exit point: the forced full GC cannot free it\n"
              "but does grow the heap around it.\n");
  return 0;
}
