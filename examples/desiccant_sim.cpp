// desiccant_sim: a small CLI around the library for interactive exploration.
//
//   desiccant_sim list
//       lists the available workloads (Table 1 + the Python extensions)
//   desiccant_sim study <workload> [--mode vanilla|eager] [--iterations N]
//                 [--budget-mib M] [--lambda] [--reclaim]
//       runs the single-instance characterization and prints the memory trail
//   desiccant_sim replay [--mode vanilla|eager|desiccant] [--scale-factor S]
//                 [--cache-mib M] [--seconds T]
//       replays an Azure-style trace against the platform
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/table.h"
#include "src/core/desiccant_manager.h"
#include "src/faas/platform.h"
#include "src/faas/single_study.h"
#include "src/trace/azure_trace.h"
#include "src/trace/trace_import.h"
#include "src/workloads/function_spec.h"
#include "src/workloads/workload_csv.h"

namespace {

using namespace desiccant;

int Usage() {
  std::printf(
      "usage:\n"
      "  desiccant_sim list\n"
      "  desiccant_sim study <workload> [--mode vanilla|eager] [--iterations N]\n"
      "                [--budget-mib M] [--lambda] [--reclaim]\n"
      "  desiccant_sim replay [--mode vanilla|eager|desiccant|swap] [--scale-factor S]\n"
      "                [--cache-mib M] [--seconds T]\n"
      "                [--trace-counts invocations.csv --trace-durations durations.csv]\n"
      "                (replays the real Azure Functions 2019 dataset when given)\n");
  return 2;
}

const char* Arg(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return fallback;
}

bool Has(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

int List() {
  Table table({"workload", "language", "stages", "exec_ms"});
  auto add = [&table](const WorkloadSpec& w) {
    table.AddRow({w.name, LanguageName(w.language), std::to_string(w.chain_length()),
                  Table::Fmt(w.TotalExecMs(), 1)});
  };
  for (const WorkloadSpec& w : WorkloadSuite()) {
    add(w);
  }
  for (const WorkloadSpec& w : PythonExtensionSuite()) {
    add(w);
  }
  table.Print("available workloads");
  return 0;
}

int Study(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  static std::vector<WorkloadSpec> custom;
  const char* csv = Arg(argc, argv, "--workloads-csv", nullptr);
  if (csv != nullptr) {
    std::string error;
    custom = LoadWorkloadsCsv(csv, &error);
    if (custom.empty()) {
      std::printf("workload csv failed: %s\n", error.c_str());
      return 1;
    }
  }
  const WorkloadSpec* workload = FindWorkload(argv[2]);
  if (workload == nullptr) {
    for (const WorkloadSpec& w : PythonExtensionSuite()) {
      if (w.name == argv[2]) {
        workload = &w;
      }
    }
  }
  for (const WorkloadSpec& w : custom) {
    if (w.name == argv[2]) {
      workload = &w;
    }
  }
  if (workload == nullptr) {
    std::printf("unknown workload '%s' (try: desiccant_sim list)\n", argv[2]);
    return 1;
  }

  StudyConfig config;
  config.memory_budget = std::strtoull(Arg(argc, argv, "--budget-mib", "256"), nullptr, 10) *
                         kMiB;
  if (std::strcmp(Arg(argc, argv, "--mode", "vanilla"), "eager") == 0) {
    config.mode = StudyMode::kEager;
  }
  if (Has(argc, argv, "--lambda")) {
    config.sharing = ImageSharing::kLambdaPrivate;
  }
  if (Has(argc, argv, "--g1")) {
    config.java_collector = JavaCollector::kG1;
  }
  const int iterations = std::atoi(Arg(argc, argv, "--iterations", "100"));

  ChainStudy study(*workload, config);
  Table table({"iteration", "uss_mib", "rss_mib", "ideal_mib", "duration_ms"});
  ChainSample sample;
  for (int i = 1; i <= iterations; ++i) {
    sample = study.Step();
    if (i == 1 || i % std::max(1, iterations / 10) == 0) {
      table.AddRow({std::to_string(i), Table::Fmt(ToMiB(sample.uss)),
                    Table::Fmt(ToMiB(sample.rss)), Table::Fmt(ToMiB(sample.ideal_uss)),
                    Table::Fmt(ToMillis(sample.duration))});
    }
  }
  if (Has(argc, argv, "--reclaim")) {
    const ReclaimResult result = study.ReclaimAll();
    sample = study.Sample();
    table.AddRow({"reclaimed", Table::Fmt(ToMiB(sample.uss)), Table::Fmt(ToMiB(sample.rss)),
                  Table::Fmt(ToMiB(sample.ideal_uss)), Table::Fmt(ToMillis(result.cpu_time))});
  }
  table.Print("study: " + workload->name + " (" + LanguageName(workload->language) + ")");

  if (Has(argc, argv, "--gc-log")) {
    Table log({"stage", "t_ms", "kind", "pause_us", "live_mib", "committed_mib",
               "released_mib"});
    for (size_t stage = 0; stage < study.instances().size(); ++stage) {
      const auto& entries = study.instances()[stage]->runtime().gc_log();
      // The tail is usually what matters; print the last 15 per stage.
      const size_t start = entries.size() > 15 ? entries.size() - 15 : 0;
      for (size_t i = start; i < entries.size(); ++i) {
        const GcLogEntry& e = entries[i];
        log.AddRow({std::to_string(stage), Table::Fmt(ToMillis(e.at), 1),
                    GcLogKindName(e.kind), Table::Fmt(static_cast<double>(e.pause) / 1000, 0),
                    Table::Fmt(ToMiB(e.live_bytes)), Table::Fmt(ToMiB(e.committed_bytes)),
                    Table::Fmt(ToMiB(PagesToBytes(e.released_pages)))});
      }
    }
    log.Print("gc log (last 15 collections per stage)");
  }
  return 0;
}

int Replay(int argc, char** argv) {
  PlatformConfig config;
  const char* mode = Arg(argc, argv, "--mode", "desiccant");
  if (std::strcmp(mode, "vanilla") == 0) {
    config.mode = MemoryMode::kVanilla;
  } else if (std::strcmp(mode, "eager") == 0) {
    config.mode = MemoryMode::kEager;
  } else if (std::strcmp(mode, "swap") == 0) {
    config.mode = MemoryMode::kSwap;
  } else {
    config.mode = MemoryMode::kDesiccant;
  }
  config.cache_capacity_bytes =
      std::strtoull(Arg(argc, argv, "--cache-mib", "2048"), nullptr, 10) * kMiB;
  const double scale = std::atof(Arg(argc, argv, "--scale-factor", "15"));
  const double seconds = std::atof(Arg(argc, argv, "--seconds", "180"));

  Platform platform(config);
  std::unique_ptr<DesiccantManager> manager;
  if (config.mode == MemoryMode::kDesiccant) {
    manager = std::make_unique<DesiccantManager>(&platform, DesiccantConfig{});
  }

  std::vector<const WorkloadSpec*> workloads;
  static std::vector<WorkloadSpec> coarse;
  if (coarse.empty()) {
    for (const WorkloadSpec& w : WorkloadSuite()) {
      coarse.push_back(CoarsenObjects(w, 4));
    }
  }
  for (const WorkloadSpec& w : coarse) {
    workloads.push_back(&w);
  }
  const SimTime end = FromSeconds(seconds);
  const char* counts_path = Arg(argc, argv, "--trace-counts", nullptr);
  if (counts_path != nullptr) {
    // Replay the real Azure Functions 2019 dataset (§5.3 / artifact appendix).
    std::string error;
    auto imported = LoadAzureInvocationCounts(counts_path, &error);
    if (imported.empty()) {
      std::printf("trace import failed: %s\n", error.c_str());
      return 1;
    }
    const char* durations_path = Arg(argc, argv, "--trace-durations", nullptr);
    if (durations_path != nullptr &&
        !JoinAzureDurations(durations_path, &imported, &error)) {
      std::printf("trace import failed: %s\n", error.c_str());
      return 1;
    }
    const auto matched = MatchWorkloadsByDuration(imported, workloads);
    std::printf("imported %zu trace functions, matched %zu workloads\n", imported.size(),
                matched.size());
    for (const TraceArrival& a : GenerateFromImported(matched, scale, 0, end, 1234)) {
      platform.Submit(a.workload, a.time);
    }
  } else {
    TraceGenerator generator(1234);
    const auto trace_functions = generator.BuildSuiteTrace(workloads);
    for (const TraceArrival& a : generator.Generate(trace_functions, scale, 0, end)) {
      platform.Submit(a.workload, a.time);
    }
  }
  platform.BeginMeasurement();
  platform.RunUntil(end);
  const PlatformMetrics& m = platform.FinishMeasurement();

  Table table({"metric", "value"});
  table.AddRow({"requests_completed", std::to_string(m.requests_completed)});
  table.AddRow({"throughput_rps", Table::Fmt(m.ThroughputRps())});
  table.AddRow({"cold_boots_per_s", Table::Fmt(m.ColdBootsPerSecond(), 3)});
  table.AddRow({"warm_starts", std::to_string(m.warm_starts)});
  table.AddRow({"evictions", std::to_string(m.evictions)});
  table.AddRow({"reclaims", std::to_string(m.reclaims)});
  table.AddRow({"p50_ms", Table::Fmt(m.latency_ms.Percentile(50))});
  table.AddRow({"p99_ms", Table::Fmt(m.latency_ms.Percentile(99))});
  table.AddRow({"cpu_utilization", Table::Fmt(m.CpuUtilization(config.cpu_cores), 3)});
  table.Print(std::string("replay: mode=") + mode + ", scale factor " +
              Table::Fmt(scale, 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "list") == 0) {
    return List();
  }
  if (std::strcmp(argv[1], "study") == 0) {
    return Study(argc, argv);
  }
  if (std::strcmp(argv[1], "replay") == 0) {
    return Replay(argc, argv);
  }
  return Usage();
}
