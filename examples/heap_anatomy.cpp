// Heap anatomy: where exactly the frozen garbage lives.
//
// Runs one function per runtime (serial HotSpot, V8, CPython) and prints a
// per-space residency breakdown at three moments: right after the last exit
// point (frozen), after an eager GC, and after Desiccant's reclaim — making
// §3.2's runtime-specific explanations visible.
//
//   $ ./examples/heap_anatomy
#include <cstdio>

#include "src/base/table.h"
#include "src/cpython/cpython_runtime.h"
#include "src/hotspot/hotspot_runtime.h"
#include "src/v8/v8_runtime.h"
#include "src/workloads/function_program.h"
#include "src/workloads/function_spec.h"

namespace {

using namespace desiccant;

void RunInvocations(ManagedRuntime& runtime, SimClock& clock, const StageSpec& spec, int n) {
  FunctionProgram program(spec, 11);
  for (int i = 0; i < n; ++i) {
    if (program.has_carry()) {
      program.ConsumeCarry(runtime);
    }
    program.Invoke(runtime, clock);
  }
}

void HotSpotAnatomy() {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  HotSpotRuntime runtime(&vas, &clock, HotSpotConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  RunInvocations(runtime, clock, FindWorkload("file-hash")->stages[0], 100);

  Table table({"moment", "eden_mib", "survivors_mib", "old_mib", "heap_resident_mib",
               "live_mib"});
  auto row = [&](const char* moment) {
    table.AddRow({moment, Table::Fmt(ToMiB(runtime.eden().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.from_space().ResidentBytes() +
                                   runtime.to_space().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.old_gen().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.HeapResidentBytes())),
                  Table::Fmt(ToMiB(runtime.ExactLiveBytes()))});
  };
  row("frozen (after 100 exits)");
  runtime.CollectGarbage(false);
  row("after System.gc()");
  runtime.Reclaim({});
  row("after Desiccant reclaim");
  table.Print("HotSpot serial heap: file-hash (note: System.gc resizes, but free pages "
              "below the committed boundary stay resident)");
}

void V8Anatomy() {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  V8Runtime runtime(&vas, &clock, V8Config::ForInstanceBudget(256 * kMiB), &registry);
  RunInvocations(runtime, clock, FindWorkload("fft")->stages[0], 100);

  Table table({"moment", "from_mib", "to_mib", "old_mib", "semispace_mib", "live_mib"});
  auto row = [&](const char* moment) {
    table.AddRow({moment, Table::Fmt(ToMiB(runtime.from_space().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.to_space().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.old_space().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.semispace_size())),
                  Table::Fmt(ToMiB(runtime.ExactLiveBytes()))});
  };
  row("frozen (after 100 exits)");
  runtime.CollectGarbage(true);
  row("after global.gc()");
  runtime.Reclaim({});
  row("after Desiccant reclaim");
  table.Print("V8 heap: fft (note: global.gc cannot shrink the hot young generation; "
              "the reclaim's freeze-aware resize can)");
}

void CPythonAnatomy() {
  SharedFileRegistry registry;
  SimClock clock;
  VirtualAddressSpace vas(&registry);
  CPythonRuntime runtime(&vas, &clock, CPythonConfig::ForInstanceBudget(256 * kMiB),
                         &registry);
  RunInvocations(runtime, clock, PythonExtensionSuite()[0].stages[0], 100);

  Table table({"moment", "arenas", "arena_resident_mib", "arena_used_mib", "live_mib"});
  auto row = [&](const char* moment) {
    table.AddRow({moment, std::to_string(runtime.arenas().chunks().size()),
                  Table::Fmt(ToMiB(runtime.arenas().ResidentBytes())),
                  Table::Fmt(ToMiB(runtime.arenas().used_bytes())),
                  Table::Fmt(ToMiB(runtime.ExactLiveBytes()))});
  };
  row("frozen (after 100 exits)");
  runtime.CollectGarbage(false);
  row("after gc.collect()");
  runtime.Reclaim({});
  row("after Desiccant reclaim");
  table.Print("CPython arenas: py-json-transform (note: gc.collect only returns "
              "completely empty arenas; the reclaim releases the free pages inside them)");
}

}  // namespace

int main() {
  HotSpotAnatomy();
  V8Anatomy();
  CPythonAnatomy();
  return 0;
}
